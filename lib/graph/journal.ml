(* On-disk format.

   v1 (legacy): one mutation per line, tab-separated —
       add\tTAIL\tLABEL\tHEAD | del\t... | vertex\tNAME
   No header, no integrity information: a torn write that happens to parse
   is applied verbatim, which is why v1 is read-compatible but no longer
   written for new journals.

   v2: a header line "#mrpa.journal/2" followed by framed records —
       SEQ\tCRC8HEX\tPAYLOAD
   where PAYLOAD is exactly a v1 mutation line, SEQ is a 1-based record
   sequence number and CRC is the CRC-32 of "SEQ\tPAYLOAD". The checksum
   detects torn writes and bit rot; the sequence number detects lost or
   reordered records. Lines that are blank or start with '#' are comments
   in both formats.

   Every file-system side effect goes through {!Io_fault} so the crash
   matrix in test/test_journal.ml can fail each one deterministically. *)

type version = V1 | V2

type corruption =
  | Torn_tail of { offset : int; bytes : int }
  | Bad_checksum of { lineno : int }
  | Bad_sequence of { lineno : int; expected : int; found : int }
  | Malformed of { lineno : int; text : string }
  | Unapplied of { lineno : int; reason : string }

let describe_corruption = function
  | Torn_tail { offset; bytes } ->
    Printf.sprintf "torn tail: %d trailing byte(s) dropped at offset %d" bytes
      offset
  | Bad_checksum { lineno } ->
    Printf.sprintf "line %d: checksum mismatch (record skipped)" lineno
  | Bad_sequence { lineno; expected; found } ->
    Printf.sprintf "line %d: sequence jump (expected %d, found %d)" lineno
      expected found
  | Malformed { lineno; text } ->
    Printf.sprintf "line %d: malformed record %S (skipped)" lineno text
  | Unapplied { lineno; reason } ->
    Printf.sprintf "line %d: %s (skipped)" lineno reason

let pp_corruption fmt c = Format.pp_print_string fmt (describe_corruption c)

let header = "#mrpa.journal/2"
let header_prefix = "#mrpa.journal/"

exception Unsupported_format of string

(* --- Reading ----------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Split into newline-terminated lines plus the unterminated trailing
   fragment, if any — the fragment is where torn writes live. *)
let split_content content =
  let n = String.length content in
  let rec go start acc =
    if start >= n then (List.rev acc, None)
    else
      match String.index_from_opt content start '\n' with
      | None -> (List.rev acc, Some (String.sub content start (n - start)))
      | Some i -> go (i + 1) (String.sub content start (i - start) :: acc)
  in
  go 0 []

(* Apply one v1-syntax mutation payload; raises [Failure] with a rendered
   reason when the payload is malformed or cannot be applied. *)
let apply_payload_exn g payload =
  match String.split_on_char '\t' (String.trim payload) with
  | [ "vertex"; name ] -> ignore (Digraph.vertex g name)
  | [ "add"; tail; label; head ] -> ignore (Digraph.add g tail label head)
  | [ "del"; tail; label; head ] ->
    let resolve what find name =
      match find name with
      | Some x -> x
      | None ->
        failwith (Printf.sprintf "deletes unknown %s %S" what name)
    in
    let e =
      Edge.make
        ~tail:(resolve "vertex" (Digraph.find_vertex g) tail)
        ~label:(resolve "label" (Digraph.find_label g) label)
        ~head:(resolve "vertex" (Digraph.find_vertex g) head)
    in
    ignore (Digraph.remove_edge g e)
  | _ -> failwith "malformed record"

let is_comment line =
  let l = String.trim line in
  l = "" || l.[0] = '#'

type frame = Frame of int * string | Bad_crc | Not_frame

let parse_frame line =
  match String.index_opt line '\t' with
  | None -> Not_frame
  | Some i1 -> (
    match String.index_from_opt line (i1 + 1) '\t' with
    | None -> Not_frame
    | Some i2 -> (
      let seqs = String.sub line 0 i1 in
      let crcs = String.sub line (i1 + 1) (i2 - i1 - 1) in
      let payload = String.sub line (i2 + 1) (String.length line - i2 - 1) in
      match (int_of_string_opt seqs, Crc32.of_hex crcs) with
      | Some seq, Some crc when seq >= 1 ->
        if Crc32.string (seqs ^ "\t" ^ payload) = crc then Frame (seq, payload)
        else Bad_crc
      | _ -> Not_frame))

type scan_result = {
  s_version : version;
  s_applied : int;
  s_last_seq : int;
  s_corruptions : corruption list;
  s_payloads : string list;  (* applied payloads, reverse order *)
  s_truncate_to : int option;
  s_needs_newline : bool;
}

(* One pass over a journal's bytes, applying every valid record to [g].

   [strict] is the replay/attach mode: any mid-file corruption raises
   [Failure] — only a torn tail (the expected shape of a crash) is
   tolerated, recorded and logically truncated. Non-strict is the recover
   mode: corrupt records are skipped and reported, valid ones salvaged. *)
let scan ~strict ~path g content =
  let lines, fragment = split_content content in
  let version =
    match lines with
    | first :: _ when first = header -> V2
    | first :: _ when String.starts_with ~prefix:header_prefix first ->
      raise (Unsupported_format first)
    | _ -> V1
  in
  let corruptions = ref [] in
  let payloads = ref [] in
  let applied = ref 0 in
  let last_seq = ref 0 in
  let expected = ref 1 in
  let resync = ref false in
  let fail c =
    failwith (Printf.sprintf "Journal: %s: %s" path (describe_corruption c))
  in
  let report c = if strict then fail c else corruptions := c :: !corruptions in
  let record ~seq payload =
    applied := !applied + 1;
    payloads := payload :: !payloads;
    (match seq with
    | Some s ->
      last_seq := s;
      expected := s + 1
    | None -> last_seq := !applied)
  in
  (* Apply a complete line. Returns [true] when a record was applied (used
     by the fragment logic below). *)
  let handle_line lineno line =
    match version with
    | V1 ->
      if is_comment line then false
      else (
        match apply_payload_exn g line with
        | () ->
          record ~seq:None (String.trim line);
          true
        | exception Failure reason ->
          report (Unapplied { lineno; reason });
          false)
    | V2 ->
      if lineno = 1 && line = header then false
      else if is_comment line then false
      else (
        match parse_frame line with
        | Not_frame ->
          report (Malformed { lineno; text = line });
          resync := true;
          false
        | Bad_crc ->
          report (Bad_checksum { lineno });
          resync := true;
          false
        | Frame (seq, payload) -> (
          (* After a skipped record the very next sequence number cannot
             match; adopt it silently instead of double-reporting. *)
          if !resync then resync := false
          else if seq <> !expected then
            report (Bad_sequence { lineno; expected = !expected; found = seq });
          match apply_payload_exn g payload with
          | () ->
            record ~seq:(Some seq) payload;
            true
          | exception Failure reason ->
            report (Unapplied { lineno; reason });
            false))
  in
  List.iteri (fun i line -> ignore (handle_line (i + 1) line)) lines;
  let truncate_to = ref None in
  let needs_newline = ref false in
  (match fragment with
  | None -> ()
  | Some f ->
    let flineno = List.length lines + 1 in
    let torn () =
      let offset = String.length content - String.length f in
      corruptions := Torn_tail { offset; bytes = String.length f } :: !corruptions;
      truncate_to := Some offset
    in
    (* An unterminated final line is applied only when it is a complete,
       valid record (v2: frame and checksum intact; v1: it parses and
       applies) — anything else is a torn write, dropped with a warning
       even in strict mode. That is the crash-tolerance contract: a crash
       between write and flush costs at most the final record. *)
    let applied_fragment =
      match version with
      | V1 ->
        if is_comment f then false
        else (
          match apply_payload_exn g f with
          | () ->
            record ~seq:None (String.trim f);
            true
          | exception Failure _ -> false)
      | V2 -> (
        match parse_frame f with
        | Frame (seq, payload) -> (
          match apply_payload_exn g payload with
          | () ->
            if !resync then resync := false
            else if seq <> !expected then
              report
                (Bad_sequence { lineno = flineno; expected = !expected; found = seq });
            record ~seq:(Some seq) payload;
            true
          | exception Failure _ -> false)
        | Bad_crc | Not_frame -> false)
    in
    if applied_fragment then needs_newline := true else torn ());
  {
    s_version = version;
    s_applied = !applied;
    s_last_seq = !last_seq;
    s_corruptions = List.rev !corruptions;
    s_payloads = List.rev !payloads;
    s_truncate_to = !truncate_to;
    s_needs_newline = !needs_newline;
  }

(* --- Replay ------------------------------------------------------------- *)

let default_warn msg = Printf.eprintf "mrpa journal: warning: %s\n%!" msg

let scan_strict ~on_warning g path content =
  match scan ~strict:true ~path g content with
  | s ->
    List.iter
      (fun c -> on_warning (Printf.sprintf "%s: %s" path (describe_corruption c)))
      s.s_corruptions;
    s
  | exception Unsupported_format v ->
    failwith (Printf.sprintf "Journal: %s: unsupported format %S" path v)

let replay_into ?(on_warning = default_warn) g path =
  if Sys.file_exists path then begin
    let content = read_file path in
    if content <> "" then ignore (scan_strict ~on_warning g path content)
  end

let replay path =
  let g = Digraph.create () in
  replay_into g path;
  g

(* --- Live journal ------------------------------------------------------- *)

type t = {
  graph : Digraph.t;
  path : string;
  mutable fd : Unix.file_descr;
  mutable written : int;
  mutable closed : bool;
  mutable version : version;
  mutable next_seq : int;
  mutable fsync_errors : int;
  on_warning : string -> unit;
  (* The exact closures registered on the graph, kept so [close] can detach
     them (observer removal is by physical equality). *)
  mutable added_cb : Edge.t -> unit;
  mutable removed_cb : Edge.t -> unit;
}

let frame ~seq payload =
  (* Append hot path: plain concatenation, no Printf machinery. *)
  let seqs = string_of_int seq in
  let crc = Crc32.update (Crc32.string (seqs ^ "\t")) payload in
  String.concat "" [ seqs; "\t"; Crc32.to_hex crc; "\t"; payload ]

let frame_v2 ~seq payload = frame ~seq payload ^ "\n"

let append t payload =
  if not t.closed then begin
    let line =
      match t.version with
      | V1 -> payload ^ "\n"
      | V2 -> frame_v2 ~seq:t.next_seq payload
    in
    Io_fault.write t.fd line;
    (match t.version with V2 -> t.next_seq <- t.next_seq + 1 | V1 -> ());
    t.written <- t.written + 1
  end

let entry_payload g kind e =
  Printf.sprintf "%s\t%s\t%s\t%s" kind
    (Digraph.vertex_name g (Edge.tail e))
    (Digraph.label_name g (Edge.label e))
    (Digraph.vertex_name g (Edge.head e))

let attach ?(replay_existing = true) ?(on_warning = default_warn) g path =
  (* The scan also runs when [replay_existing] is false: the append format
     and next sequence number live in the file, so it is parsed either way,
     just into a scratch graph that is then dropped. *)
  let target = if replay_existing then g else Digraph.create () in
  let scanned =
    if Sys.file_exists path then begin
      let content = read_file path in
      if content = "" then None else Some (scan_strict ~on_warning target path content)
    end
    else None
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  let version, next_seq =
    match scanned with
    | None ->
      (* New (or empty) journals are v2 from the first byte. *)
      Io_fault.write fd (header ^ "\n");
      (V2, 1)
    | Some s ->
      (* A torn tail found during replay is physically truncated here, so
         subsequent appends start on a record boundary instead of gluing
         onto the fragment; an intact-but-unterminated final record just
         gets its missing newline. *)
      (match s.s_truncate_to with
      | Some off -> Unix.ftruncate fd off
      | None -> ());
      if s.s_needs_newline then Io_fault.write fd "\n";
      (s.s_version, s.s_last_seq + 1)
  in
  let t =
    {
      graph = g;
      path;
      fd;
      written = 0;
      closed = false;
      version;
      next_seq;
      fsync_errors = 0;
      on_warning;
      added_cb = ignore;
      removed_cb = ignore;
    }
  in
  t.added_cb <- (fun e -> append t (entry_payload g "add" e));
  t.removed_cb <- (fun e -> append t (entry_payload g "del" e));
  Digraph.on_edge_added g t.added_cb;
  Digraph.on_edge_removed g t.removed_cb;
  t

(* Isolated-vertex interning fires no edge observer, so it must be
   recorded explicitly; used by `mrpa append --vertex`. *)
let record_vertex t g name =
  ignore (Digraph.vertex g name);
  append t (Printf.sprintf "vertex\t%s" name)

let log_path t = t.path
let entries_written t = t.written
let format_version t = t.version
let fsync_errors t = t.fsync_errors

let sync t =
  if not t.closed then begin
    Io_fault.flush ();
    try Io_fault.fsync t.fd
    with Unix.Unix_error (e, _, _) ->
      (* An fsync failure is silent durability loss: the OS may have
         dropped the very pages we were promising to persist. Count every
         occurrence and say so out loud the first time. *)
      t.fsync_errors <- t.fsync_errors + 1;
      if t.fsync_errors = 1 then
        t.on_warning
          (Printf.sprintf "fsync failed on %s: %s (entries may not survive a crash)"
             t.path (Unix.error_message e))
  end

let snapshot_payloads g =
  let vertices =
    List.map
      (fun v -> Printf.sprintf "vertex\t%s" (Digraph.vertex_name g v))
      (Digraph.vertices g)
  in
  let edges =
    List.rev (Digraph.fold_edges (fun e acc -> entry_payload g "add" e :: acc) g [])
  in
  vertices @ edges

(* Write [payloads] as a fresh v2 journal at [dst], atomically: frame and
   fsync into [tmp] first, then rename over. Any failure removes the tmp
   file and leaves [dst] untouched. *)
let write_v2_atomic ~tmp ~dst payloads =
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     Io_fault.write fd (header ^ "\n");
     List.iteri (fun i p -> Io_fault.write fd (frame_v2 ~seq:(i + 1) p)) payloads;
     Io_fault.flush ();
     Io_fault.fsync fd;
     Io_fault.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Io_fault.rename tmp dst

(* Crash-safe compaction: the snapshot is written and fsynced to a tmp file
   {e before} the live journal is touched, so a failure while snapshotting
   leaves the journal exactly as it was (fd open, log intact). Only once
   the snapshot is durable is the old log closed and renamed over — and the
   append fd is reopened even if the rename raises, so the handle never
   ends up closed-but-not-closed (which would make every later graph
   mutation raise inside an observer). Compaction always writes v2: it is
   the upgrade path for legacy v1 logs. *)
let compact t =
  if t.closed then invalid_arg "Journal.compact: closed";
  let tmp = t.path ^ ".compact" in
  let payloads = snapshot_payloads t.graph in
  let fd_tmp =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     Io_fault.write fd_tmp (header ^ "\n");
     List.iteri
       (fun i p -> Io_fault.write fd_tmp (frame_v2 ~seq:(i + 1) p))
       payloads;
     Io_fault.flush ();
     Io_fault.fsync fd_tmp;
     Io_fault.close fd_tmp
   with e ->
     (try Unix.close fd_tmp with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  let old_closed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if !old_closed then
        t.fd <-
          Unix.openfile t.path
            [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
            0o644)
    (fun () ->
      Io_fault.close t.fd;
      old_closed := true;
      Io_fault.rename tmp t.path);
  t.version <- V2;
  t.next_seq <- List.length payloads + 1

let close t =
  if not t.closed then begin
    t.closed <- true;
    Fun.protect
      ~finally:(fun () ->
        (* Detach from the graph so attach/close cycles don't leak closures. *)
        Digraph.off_edge_added t.graph t.added_cb;
        Digraph.off_edge_removed t.graph t.removed_cb)
      (fun () ->
        Io_fault.flush ();
        Io_fault.close t.fd)
  end

(* --- Recovery ----------------------------------------------------------- *)

type recovery = {
  r_path : string;
  graph : Digraph.t;
  format : version;
  applied : int;
  corruptions : corruption list;
  payloads : string list;
  stale_tmp : string option;
}

let recover path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such journal" path)
  else
    match read_file path with
    | exception Sys_error msg -> Error msg
    | content -> (
      let g = Digraph.create () in
      match scan ~strict:false ~path g content with
      | exception Unsupported_format v ->
        Error (Printf.sprintf "%s: unsupported journal format %S" path v)
      | s ->
        let tmp = path ^ ".compact" in
        Ok
          {
            r_path = path;
            graph = g;
            format = s.s_version;
            applied = s.s_applied;
            corruptions = s.s_corruptions;
            payloads = s.s_payloads;
            stale_tmp = (if Sys.file_exists tmp then Some tmp else None);
          })

let is_clean r = r.corruptions = [] && r.stale_tmp = None

let repair r =
  write_v2_atomic ~tmp:(r.r_path ^ ".repair") ~dst:r.r_path r.payloads;
  match r.stale_tmp with
  | Some tmp -> ( try Sys.remove tmp with Sys_error _ -> ())
  | None -> ()

(* --- Streaming / replication support ------------------------------------ *)

let v2_header = header

let apply_payload g payload =
  match apply_payload_exn g payload with
  | () -> Ok ()
  | exception Failure reason -> Error reason
