type t = {
  graph : Digraph.t;
  path : string;
  mutable channel : out_channel;
  mutable written : int;
  mutable closed : bool;
  (* The exact closures registered on the graph, kept so [close] can detach
     them (observer removal is by physical equality). *)
  mutable added_cb : Edge.t -> unit;
  mutable removed_cb : Edge.t -> unit;
}

let entry_line g kind e =
  Printf.sprintf "%s\t%s\t%s\t%s\n" kind
    (Digraph.vertex_name g (Edge.tail e))
    (Digraph.label_name g (Edge.label e))
    (Digraph.vertex_name g (Edge.head e))

let append t line =
  if not t.closed then begin
    output_string t.channel line;
    flush t.channel;
    t.written <- t.written + 1
  end

let apply_line g lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else
    match String.split_on_char '\t' line with
    | [ "vertex"; name ] -> ignore (Digraph.vertex g name)
    | [ "add"; tail; label; head ] -> ignore (Digraph.add g tail label head)
    | [ "del"; tail; label; head ] ->
      let resolve what find name =
        match find name with
        | Some x -> x
        | None ->
          failwith
            (Printf.sprintf "Journal: line %d deletes unknown %s %S" lineno
               what name)
      in
      let e =
        Edge.make
          ~tail:(resolve "vertex" (Digraph.find_vertex g) tail)
          ~label:(resolve "label" (Digraph.find_label g) label)
          ~head:(resolve "vertex" (Digraph.find_vertex g) head)
      in
      ignore (Digraph.remove_edge g e)
    | _ -> failwith (Printf.sprintf "Journal: malformed line %d: %s" lineno line)

let replay_into g path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lineno = ref 0 in
        try
          while true do
            let line = input_line ic in
            incr lineno;
            apply_line g !lineno line
          done
        with End_of_file -> ())
  end

let replay path =
  let g = Digraph.create () in
  replay_into g path;
  g

let attach ?(replay_existing = true) g path =
  if replay_existing then replay_into g path;
  let channel =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  let t =
    {
      graph = g;
      path;
      channel;
      written = 0;
      closed = false;
      added_cb = ignore;
      removed_cb = ignore;
    }
  in
  t.added_cb <- (fun e -> append t (entry_line g "add" e));
  t.removed_cb <- (fun e -> append t (entry_line g "del" e));
  Digraph.on_edge_added g t.added_cb;
  Digraph.on_edge_removed g t.removed_cb;
  t

let log_path t = t.path
let entries_written t = t.written

let sync t =
  if not t.closed then begin
    flush t.channel;
    (try Unix.fsync (Unix.descr_of_out_channel t.channel) with Unix.Unix_error _ -> ())
  end

let snapshot_lines g =
  let buf = Buffer.create 1024 in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "vertex\t%s\n" (Digraph.vertex_name g v)))
    (Digraph.vertices g);
  Digraph.iter_edges (fun e -> Buffer.add_string buf (entry_line g "add" e)) g;
  Buffer.contents buf

(* Crash-safe compaction: the snapshot is written and fsynced to a tmp file
   {e before} the live channel is touched, so a failure while snapshotting
   leaves the journal exactly as it was (channel open, log intact). Only
   once the snapshot is durable is the old log closed and renamed over —
   and the append channel is reopened even if the rename raises, so the
   handle never ends up closed-but-not-closed (which would make every later
   graph mutation raise inside an observer). *)
let compact t =
  if t.closed then invalid_arg "Journal.compact: closed";
  let tmp = t.path ^ ".compact" in
  let oc = open_out tmp in
  (try
     output_string oc (snapshot_lines t.graph);
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  flush t.channel;
  close_out t.channel;
  Fun.protect
    ~finally:(fun () ->
      t.channel <-
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 t.path)
    (fun () -> Sys.rename tmp t.path)

let close t =
  if not t.closed then begin
    flush t.channel;
    close_out t.channel;
    t.closed <- true;
    (* Detach from the graph so attach/close cycles don't leak closures. *)
    Digraph.off_edge_added t.graph t.added_cb;
    Digraph.off_edge_removed t.graph t.removed_cb
  end
