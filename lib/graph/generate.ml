let add_numbered_vertices g n = List.init n (fun i -> Digraph.vertex g (Printf.sprintf "v%d" i))

let add_numbered_labels g k =
  List.init k (fun i -> Digraph.label g (Printf.sprintf "r%d" i))

let uniform ~rng ~n_vertices ~n_edges ~n_labels =
  if n_vertices <= 0 then invalid_arg "Generate.uniform: n_vertices <= 0";
  if n_labels <= 0 then invalid_arg "Generate.uniform: n_labels <= 0";
  let distinct = n_vertices * n_vertices * n_labels in
  if n_edges > distinct then
    invalid_arg "Generate.uniform: more edges than distinct triples";
  let g = Digraph.create ~vertex_capacity:n_vertices () in
  let vs = Array.of_list (add_numbered_vertices g n_vertices) in
  let ls = Array.of_list (add_numbered_labels g n_labels) in
  let added = ref 0 in
  while !added < n_edges do
    let e = Edge.v (Prng.pick rng vs) (Prng.pick rng ls) (Prng.pick rng vs) in
    if Digraph.add_edge g e then incr added
  done;
  g

let preferential ~rng ~n_vertices ~out_degree ~n_labels =
  if n_vertices <= 0 then invalid_arg "Generate.preferential: n_vertices <= 0";
  let g = Digraph.create ~vertex_capacity:n_vertices () in
  let vs = Array.of_list (add_numbered_vertices g n_vertices) in
  let ls = Array.of_list (add_numbered_labels g n_labels) in
  (* [targets] holds one entry per (1 + in-degree) unit of attachment mass. *)
  let targets = ref [ vs.(0) ] in
  for i = 1 to n_vertices - 1 do
    let src = vs.(i) in
    let pool = Array.of_list !targets in
    let emitted = min out_degree i in
    for _ = 1 to emitted do
      let dst = Prng.pick rng pool in
      let e = Edge.v src (Prng.pick rng ls) dst in
      if Digraph.add_edge g e then targets := dst :: !targets
    done;
    targets := src :: !targets
  done;
  g

let ring ~n ~n_labels =
  if n <= 0 then invalid_arg "Generate.ring: n <= 0";
  if n_labels <= 0 then invalid_arg "Generate.ring: n_labels <= 0";
  let g = Digraph.create ~vertex_capacity:n () in
  let vs = Array.of_list (add_numbered_vertices g n) in
  let ls = Array.of_list (add_numbered_labels g n_labels) in
  for i = 0 to n - 1 do
    let e = Edge.v vs.(i) ls.(i mod n_labels) vs.((i + 1) mod n) in
    ignore (Digraph.add_edge g e)
  done;
  g

let lattice ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Generate.lattice: empty grid";
  let g = Digraph.create ~vertex_capacity:(rows * cols) () in
  let v r c = Digraph.vertex g (Printf.sprintf "x%d_%d" r c) in
  let right = Digraph.label g "right" and down = Digraph.label g "down" in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Digraph.add_edge g (Edge.v (v r c) right (v r (c + 1))));
      if r + 1 < rows then ignore (Digraph.add_edge g (Edge.v (v r c) down (v (r + 1) c)))
    done
  done;
  g

let star ~n_leaves =
  if n_leaves < 0 then invalid_arg "Generate.star: negative leaves";
  let g = Digraph.create ~vertex_capacity:(n_leaves + 1) () in
  let hub = Digraph.vertex g "hub" in
  let spoke = Digraph.label g "spoke" in
  for i = 0 to n_leaves - 1 do
    let leaf = Digraph.vertex g (Printf.sprintf "leaf%d" i) in
    ignore (Digraph.add_edge g (Edge.v hub spoke leaf))
  done;
  g

let complete ~n ~n_labels =
  if n <= 0 || n_labels <= 0 then invalid_arg "Generate.complete: empty";
  let g = Digraph.create ~vertex_capacity:n () in
  let vs = Array.of_list (add_numbered_vertices g n) in
  let ls = Array.of_list (add_numbered_labels g n_labels) in
  Array.iter
    (fun i ->
      Array.iter
        (fun j ->
          if not (Vertex.equal i j) then
            Array.iter (fun l -> ignore (Digraph.add_edge g (Edge.v i l j))) ls)
        vs)
    vs;
  g

let layered ~rng ~layers ~width ~fanout ~n_labels =
  if layers <= 0 || width <= 0 then invalid_arg "Generate.layered: empty";
  let g = Digraph.create ~vertex_capacity:(layers * width) () in
  let v l s = Digraph.vertex g (Printf.sprintf "l%d_%d" l s) in
  (* Intern in layer-major order first so ids are predictable. *)
  for l = 0 to layers - 1 do
    for s = 0 to width - 1 do
      ignore (v l s)
    done
  done;
  let ls = Array.of_list (add_numbered_labels g n_labels) in
  for l = 0 to layers - 2 do
    for s = 0 to width - 1 do
      for _ = 1 to fanout do
        let dst = v (l + 1) (Prng.int rng width) in
        ignore (Digraph.add_edge g (Edge.v (v l s) (Prng.pick rng ls) dst))
      done
    done
  done;
  g

let social ~rng ~n_people ~n_orgs ~n_projects =
  if n_people <= 0 then invalid_arg "Generate.social: no people";
  let g = Digraph.create ~vertex_capacity:(n_people + n_orgs + n_projects) () in
  let people = Array.init n_people (fun i -> Digraph.vertex g (Printf.sprintf "p%d" i)) in
  let orgs = Array.init n_orgs (fun i -> Digraph.vertex g (Printf.sprintf "org%d" i)) in
  let projects =
    Array.init n_projects (fun i -> Digraph.vertex g (Printf.sprintf "proj%d" i))
  in
  let knows = Digraph.label g "knows"
  and works_for = Digraph.label g "works_for"
  and member_of = Digraph.label g "member_of"
  and created = Digraph.label g "created"
  and likes = Digraph.label g "likes" in
  (* knows: preferential among people (about 2 edges per person). *)
  let targets = ref [ people.(0) ] in
  for i = 1 to n_people - 1 do
    let pool = Array.of_list !targets in
    for _ = 1 to min 2 i do
      let friend = Prng.pick rng pool in
      if not (Vertex.equal friend people.(i)) then begin
        if Digraph.add_edge g (Edge.v people.(i) knows friend) then
          targets := friend :: !targets;
        (* knows is frequently reciprocated *)
        if Prng.bernoulli rng 0.5 then
          ignore (Digraph.add_edge g (Edge.v friend knows people.(i)))
      end
    done;
    targets := people.(i) :: !targets
  done;
  Array.iter
    (fun p ->
      if n_orgs > 0 then
        ignore (Digraph.add_edge g (Edge.v p works_for (Prng.pick rng orgs)));
      if n_projects > 0 && Prng.bernoulli rng 0.7 then
        ignore (Digraph.add_edge g (Edge.v p member_of (Prng.pick rng projects)));
      if n_projects > 0 && Prng.bernoulli rng 0.2 then
        ignore (Digraph.add_edge g (Edge.v p created (Prng.pick rng projects)));
      if n_projects > 0 && Prng.bernoulli rng 0.4 then
        ignore (Digraph.add_edge g (Edge.v p likes (Prng.pick rng projects))))
    people;
  g

let knowledge_base ~rng ~n_entities =
  if n_entities < 6 then invalid_arg "Generate.knowledge_base: need >= 6 entities";
  let g = Digraph.create ~vertex_capacity:n_entities () in
  let n_people = n_entities / 2 in
  let n_films = n_entities / 3 in
  let n_cities = n_entities - n_people - n_films in
  let people =
    Array.init n_people (fun i -> Digraph.vertex g (Printf.sprintf "person%d" i))
  in
  let films = Array.init n_films (fun i -> Digraph.vertex g (Printf.sprintf "film%d" i)) in
  let cities =
    Array.init n_cities (fun i -> Digraph.vertex g (Printf.sprintf "city%d" i))
  in
  let acted_in = Digraph.label g "acted_in"
  and directed = Digraph.label g "directed"
  and influenced = Digraph.label g "influenced"
  and married_to = Digraph.label g "married_to"
  and born_in = Digraph.label g "born_in"
  and set_in = Digraph.label g "set_in" in
  Array.iter
    (fun p ->
      let n_roles = 1 + Prng.geometric rng 0.5 in
      for _ = 1 to n_roles do
        ignore (Digraph.add_edge g (Edge.v p acted_in (Prng.pick rng films)))
      done;
      if Prng.bernoulli rng 0.25 then
        ignore (Digraph.add_edge g (Edge.v p directed (Prng.pick rng films)));
      if Prng.bernoulli rng 0.3 then begin
        let q = Prng.pick rng people in
        if not (Vertex.equal p q) then
          ignore (Digraph.add_edge g (Edge.v p influenced q))
      end;
      if Prng.bernoulli rng 0.15 then begin
        let q = Prng.pick rng people in
        if not (Vertex.equal p q) then begin
          ignore (Digraph.add_edge g (Edge.v p married_to q));
          ignore (Digraph.add_edge g (Edge.v q married_to p))
        end
      end;
      ignore (Digraph.add_edge g (Edge.v p born_in (Prng.pick rng cities))))
    people;
  Array.iter
    (fun f ->
      if Prng.bernoulli rng 0.6 then
        ignore (Digraph.add_edge g (Edge.v f set_in (Prng.pick rng cities))))
    films;
  g

let bipartite ~rng ~left ~right ~n_edges ~n_labels =
  if left <= 0 || right <= 0 || n_labels <= 0 then
    invalid_arg "Generate.bipartite: empty part";
  if n_edges > left * right * n_labels then
    invalid_arg "Generate.bipartite: more edges than distinct triples";
  let g = Digraph.create ~vertex_capacity:(left + right) () in
  let ls = Array.init left (fun i -> Digraph.vertex g (Printf.sprintf "l%d" i)) in
  let rs = Array.init right (fun i -> Digraph.vertex g (Printf.sprintf "r%d" i)) in
  let labels = Array.of_list (add_numbered_labels g n_labels) in
  let added = ref 0 in
  while !added < n_edges do
    let e = Edge.v (Prng.pick rng ls) (Prng.pick rng labels) (Prng.pick rng rs) in
    if Digraph.add_edge g e then incr added
  done;
  g

let tree ~branching ~depth =
  if branching <= 0 || depth < 0 then invalid_arg "Generate.tree: bad shape";
  let g = Digraph.create () in
  let child = Digraph.label g "child" in
  let v i = Digraph.vertex g (Printf.sprintf "n%d" i) in
  ignore (v 0);
  (* BFS numbering: vertex ids are allocated in breadth-first order *)
  let next = ref 1 in
  let queue = Queue.create () in
  Queue.add (0, 0) queue;
  while not (Queue.is_empty queue) do
    let i, level = Queue.pop queue in
    if level < depth then
      for _ = 1 to branching do
        let c = !next in
        incr next;
        ignore (Digraph.add_edge g (Edge.v (v i) child (v c)));
        Queue.add (c, level + 1) queue
      done
  done;
  g

let fig1 ~rng ~n_noise_vertices ~n_noise_edges =
  let g = Digraph.create () in
  let i = Digraph.vertex g "i"
  and j = Digraph.vertex g "j"
  and k = Digraph.vertex g "k" in
  let alpha = Digraph.label g "alpha" and beta = Digraph.label g "beta" in
  let noise =
    Array.init n_noise_vertices (fun n -> Digraph.vertex g (Printf.sprintf "n%d" n))
  in
  let core = [| i; j; k |] in
  let any () =
    if n_noise_vertices > 0 && Prng.bernoulli rng 0.7 then Prng.pick rng noise
    else Prng.pick rng core
  in
  (* Deterministic skeleton: every Figure 1 transition is realisable. *)
  let skeleton =
    [
      Edge.v i alpha j; (* [i,α,_] straight into the α-arrival at j *)
      Edge.v j alpha i; (* the explicit {(j,α,i)} back edge *)
      Edge.v i alpha k; (* direct [_,α,k] arrival *)
    ]
  in
  List.iter (fun e -> ignore (Digraph.add_edge g e)) skeleton;
  (* A β-chain reachable from i's α-edges and feeding the α-arrivals. *)
  if n_noise_vertices >= 2 then begin
    ignore (Digraph.add_edge g (Edge.v j beta noise.(0)));
    ignore (Digraph.add_edge g (Edge.v noise.(0) beta noise.(1)));
    ignore (Digraph.add_edge g (Edge.v noise.(1) alpha j));
    ignore (Digraph.add_edge g (Edge.v noise.(1) alpha k))
  end
  else begin
    ignore (Digraph.add_edge g (Edge.v j beta j));
    ignore (Digraph.add_edge g (Edge.v j alpha k))
  end;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < n_noise_edges && !attempts < 100 * (n_noise_edges + 1) do
    incr attempts;
    let lab = if Prng.bool rng then alpha else beta in
    if Digraph.add_edge g (Edge.v (any ()) lab (any ())) then incr added
  done;
  g
