type t = {
  mutable default_weight : float;
  by_label : float Label.Tbl.t;
  by_edge : float Edge.Tbl.t;
}

exception Malformed of int * string

let create ?(default = 1.0) () =
  { default_weight = default; by_label = Label.Tbl.create 8; by_edge = Edge.Tbl.create 32 }

let default t = t.default_weight
let set_default t v = t.default_weight <- v
let set_label t l v = Label.Tbl.replace t.by_label l v
let set_edge t e v = Edge.Tbl.replace t.by_edge e v

let weight t e =
  match Edge.Tbl.find_opt t.by_edge e with
  | Some v -> v
  | None -> (
    match Label.Tbl.find_opt t.by_label (Edge.label e) with
    | Some v -> v
    | None -> t.default_weight)

let to_fun t e = weight t e
let total t p = Path.fold (fun acc e -> acc +. weight t e) 0.0 p

let write_channel g oc t =
  Printf.fprintf oc "default\t%g\n" t.default_weight;
  Label.Tbl.fold (fun l v acc -> (l, v) :: acc) t.by_label []
  |> List.sort compare
  |> List.iter (fun (l, v) ->
         Printf.fprintf oc "label\t%s\t%g\n" (Digraph.label_name g l) v);
  Edge.Tbl.fold (fun e v acc -> (e, v) :: acc) t.by_edge []
  |> List.sort compare
  |> List.iter (fun (e, v) ->
         Printf.fprintf oc "edge\t%s\t%s\t%s\t%g\n"
           (Digraph.vertex_name g (Edge.tail e))
           (Digraph.label_name g (Edge.label e))
           (Digraph.vertex_name g (Edge.head e))
           v)

let parse_line g t lineno line =
  let fail () = raise (Malformed (lineno, line)) in
  let float_of s = match float_of_string_opt s with Some v -> v | None -> fail () in
  let resolve_label name =
    match Digraph.find_label g name with Some l -> l | None -> fail ()
  in
  let resolve_vertex name =
    match Digraph.find_vertex g name with Some v -> v | None -> fail ()
  in
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then ()
  else
    match String.split_on_char '\t' trimmed with
    | [ "default"; v ] -> set_default t (float_of v)
    | [ "label"; name; v ] -> set_label t (resolve_label name) (float_of v)
    | [ "edge"; tail; label; head; v ] ->
      set_edge t
        (Edge.make ~tail:(resolve_vertex tail) ~label:(resolve_label label)
           ~head:(resolve_vertex head))
        (float_of v)
    | _ -> fail ()

let read_channel g ic =
  let t = create () in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       parse_line g t !lineno line
     done
   with End_of_file -> ());
  t

let save g path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel g oc t)

let load g path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel g ic)

let of_string g s =
  let t = create () in
  List.iteri (fun i line -> parse_line g t (i + 1) line) (String.split_on_char '\n' s);
  t

let to_string g t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "default\t%g\n" t.default_weight);
  Label.Tbl.fold (fun l v acc -> (l, v) :: acc) t.by_label []
  |> List.sort compare
  |> List.iter (fun (l, v) ->
         Buffer.add_string buf
           (Printf.sprintf "label\t%s\t%g\n" (Digraph.label_name g l) v));
  Edge.Tbl.fold (fun e v acc -> (e, v) :: acc) t.by_edge []
  |> List.sort compare
  |> List.iter (fun (e, v) ->
         Buffer.add_string buf
           (Printf.sprintf "edge\t%s\t%s\t%s\t%g\n"
              (Digraph.vertex_name g (Edge.tail e))
              (Digraph.label_name g (Edge.label e))
              (Digraph.vertex_name g (Edge.head e))
              v));
  Buffer.contents buf
