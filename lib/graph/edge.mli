(** Edges of a multi-relational graph.

    An edge is an element of the ternary relation [E ⊆ V × Ω × V]
    (paper, §I): a tail vertex, a label drawn from the relation-type set
    [Ω], and a head vertex. The paper's projections are [γ⁻] ({!tail}),
    [γ⁺] ({!head}) and [ω] ({!label}). *)

type t = private { tail : Vertex.t; label : Label.t; head : Vertex.t }

val make : tail:Vertex.t -> label:Label.t -> head:Vertex.t -> t
(** [make ~tail ~label ~head] is the edge [(tail, label, head)]. *)

val v : Vertex.t -> Label.t -> Vertex.t -> t
(** [v i a j] is positional shorthand for {!make}. *)

val tail : t -> Vertex.t
(** [γ⁻(e)]: the vertex the edge emanates from. *)

val head : t -> Vertex.t
(** [γ⁺(e)]: the vertex the edge terminates at. *)

val label : t -> Label.t
(** [ω(e)]: the relation type of the edge. *)

val is_loop : t -> bool
(** Does the edge adjoin a vertex to itself? *)

val reverse : t -> t
(** Swap tail and head, keeping the label. *)

val adjacent : t -> t -> bool
(** [adjacent e f] holds when [γ⁺(e) = γ⁻(f)], i.e. [e ∘ f] is a joint
    path. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [(tail,label,head)] with raw integer ids. *)

val pp_named :
  vertex_name:(Vertex.t -> string) ->
  label_name:(Label.t -> string) ->
  Format.formatter ->
  t ->
  unit
(** Prints as [(a,knows,b)] using the supplied naming functions. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
