let palette =
  [| "black"; "blue"; "red"; "darkgreen"; "purple"; "orange"; "brown"; "teal" |]

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(name = "G") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\";\n" (escape (Digraph.vertex_name g v))))
    (Digraph.vertices g);
  Digraph.iter_edges
    (fun e ->
      let color = palette.(Label.to_int (Edge.label e) mod Array.length palette) in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\", color=\"%s\"];\n"
           (escape (Digraph.vertex_name g (Edge.tail e)))
           (escape (Digraph.vertex_name g (Edge.head e)))
           (escape (Digraph.label_name g (Edge.label e)))
           color))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save ?name path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name g))
