let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(graph_name = "G") g =
  let buf = Buffer.create 4096 in
  let line s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  line {|<?xml version="1.0" encoding="UTF-8"?>|};
  line
    {|<graphml xmlns="http://graphml.graphdrawing.org/xmlns" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:schemaLocation="http://graphml.graphdrawing.org/xmlns http://graphml.graphdrawing.org/xmlns/1.0/graphml.xsd">|};
  line {|  <key id="labelV" for="node" attr.name="labelV" attr.type="string"/>|};
  line {|  <key id="labelE" for="edge" attr.name="labelE" attr.type="string"/>|};
  line (Printf.sprintf {|  <graph id="%s" edgedefault="directed">|} (escape graph_name));
  List.iter
    (fun v ->
      line
        (Printf.sprintf {|    <node id="n%d"><data key="labelV">%s</data></node>|}
           (Vertex.to_int v)
           (escape (Digraph.vertex_name g v))))
    (Digraph.vertices g);
  List.iteri
    (fun i e ->
      line
        (Printf.sprintf
           {|    <edge id="e%d" source="n%d" target="n%d"><data key="labelE">%s</data></edge>|}
           i
           (Vertex.to_int (Edge.tail e))
           (Vertex.to_int (Edge.head e))
           (escape (Digraph.label_name g (Edge.label e)))))
    (Digraph.edges g);
  line "  </graph>";
  line "</graphml>";
  Buffer.contents buf

let save ?graph_name path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?graph_name g))
