(** Multi-relational directed graph [G = (V, E ⊆ V × Ω × V)] (paper, §I).

    The store keeps the edge set [E] with set semantics (inserting an edge
    twice is a no-op: [E] is a relation, not a multiset) and maintains three
    adjacency indices — by tail vertex, by head vertex, and by label — so the
    traversal idioms of §III and the selector evaluation of §IV can enumerate
    exactly the edges they need.

    Vertices and labels are named strings interned to dense integers at
    insertion; all algebraic code manipulates the integer ids.

    {b Thread-safety contract.} A live graph is single-threaded: mutation
    (edge insertion/removal, interning of new names, observer registration)
    may race with readers and with itself, and observers hold arbitrary
    closures. A {e frozen} graph ({!freeze}) rejects every mutation with
    [Invalid_argument], after which all remaining operations are pure reads
    of tables that no longer change — safe to share across any number of
    threads or domains without locks. The server's snapshot layer
    ({!Mrpa_server.Snapshot}) builds on exactly this: freeze a private
    {!copy}, then let every worker read it concurrently. *)

type t

val create : ?vertex_capacity:int -> unit -> t
(** Fresh empty graph. *)

(** {1 Naming} *)

val vertex : t -> string -> Vertex.t
(** [vertex g name] is the id of the vertex called [name], inserting it
    (isolated) if new. On a frozen graph, looking up an existing name still
    succeeds; interning a new one raises [Invalid_argument]. *)

val label : t -> string -> Label.t
(** [label g name] is the id of the relation type called [name], registering
    it if new (frozen graphs: as {!vertex}). *)

val find_vertex : t -> string -> Vertex.t option
(** Id of an existing vertex, or [None]. *)

val find_label : t -> string -> Label.t option

val vertex_name : t -> Vertex.t -> string
(** Inverse of {!vertex}. Raises [Invalid_argument] on an unknown id. *)

val label_name : t -> Label.t -> string

(** {1 Construction} *)

val add_edge : t -> Edge.t -> bool
(** [add_edge g e] inserts [e]; returns [false] when [e] was already present.
    Both endpoints must be ids previously returned by {!vertex} (the label
    likewise by {!label}); raises [Invalid_argument] otherwise. *)

val add : t -> string -> string -> string -> Edge.t
(** [add g tail label head] interns the three names and inserts the edge,
    returning it (whether or not it was new). *)

val remove_edge : t -> Edge.t -> bool
(** [remove_edge g e] deletes [e]; returns [false] when absent. Endpoint
    vertices remain in [V]. *)

(** {1 Cardinalities} *)

val n_vertices : t -> int
val n_edges : t -> int

val n_labels : t -> int
(** [|Ω|]: the number of relation types, i.e. the number of binary relations
    in the equivalent family-of-edge-sets view [Ė]. *)

(** {1 Membership and access} *)

val mem_edge : t -> Edge.t -> bool
val mem_vertex : t -> Vertex.t -> bool

val vertices : t -> Vertex.t list
(** All vertex ids, in interning order. *)

val labels : t -> Label.t list
(** All label ids, in interning order. *)

val edges : t -> Edge.t list
(** All edges, in insertion order. *)

val iter_edges : (Edge.t -> unit) -> t -> unit
val fold_edges : (Edge.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc

val out_edges : t -> Vertex.t -> Edge.t list
(** Edges with the given tail, in insertion order ([[v,_,_]] of §IV-A). *)

val in_edges : t -> Vertex.t -> Edge.t list
(** Edges with the given head ([[_,_,v]]). *)

val edges_with_label : t -> Label.t -> Edge.t list
(** Edges with the given label ([[_,α,_]]). *)

val out_degree : t -> Vertex.t -> int
val in_degree : t -> Vertex.t -> int

val degree : t -> Vertex.t -> int
(** [out_degree + in_degree]. *)

val successors : t -> ?label:Label.t -> Vertex.t -> Vertex.t list
(** Heads of out-edges (optionally restricted to one label); may contain
    duplicates when parallel relations exist, in insertion order. *)

val predecessors : t -> ?label:Label.t -> Vertex.t -> Vertex.t list

val materialise_reverse : t -> ?suffix:string -> Label.t -> Label.t
(** [materialise_reverse g alpha] registers a new relation type named after
    [alpha] with [suffix] (default ["_rev"]) appended, inserts the reversed
    edge [(j, alpha_rev, i)] for every [(i, alpha, j) ∈ E], and returns the
    new label id. Idempotent: re-running adds no edges.

    The algebra has no inverse-step operator — a deliberate fidelity choice
    (the paper's expressions only walk edges forward) — so two-way queries
    are expressed by making the reverse relation {e data}, which is exactly
    the ternary representation's strength. *)

(** {1 Change notification} *)

val on_edge_added : t -> (Edge.t -> unit) -> unit
(** Register a callback fired after every successful edge insertion
    (duplicates that were rejected do not fire). Callbacks run in
    registration order and must not mutate the graph. Used by incremental
    materialised views ({!Mrpa_analysis.Derived_view}).

    {b Ordering guarantee.} Fan-out order {e is} registration order, and
    deregistering one callback ({!off_edge_added}) preserves the relative
    order of the survivors; a callback re-registered later moves to the
    back. That is the whole contract: no ordering is promised {e across}
    subsystems that register at different times (a layer that re-registers
    on refresh, like the server's snapshot watch, moves behind younger
    observers), so layered consumers must not rely on seeing an event
    before or after another subsystem does. The registration-order
    guarantee is pinned by a unit test. *)

val on_edge_removed : t -> (Edge.t -> unit) -> unit
(** Likewise for successful removals. *)

val off_edge_added : t -> (Edge.t -> unit) -> unit
(** Deregister a callback previously passed to {!on_edge_added}, compared by
    physical equality — keep the closure you registered if you intend to
    detach it later. Unknown callbacks are ignored. Without deregistration,
    repeated attach/detach cycles (e.g. {!Journal.attach} / {!Journal.close})
    would accumulate dead closures on the graph forever. *)

val off_edge_removed : t -> (Edge.t -> unit) -> unit
(** Likewise for {!on_edge_removed}. *)

(** {1 Freezing}

    See the thread-safety contract in the module preamble. *)

val freeze : t -> unit
(** Make the graph immutable, permanently: every subsequent mutation —
    {!add_edge}, {!remove_edge}, interning a {e new} name via {!vertex} /
    {!label} / {!add} / {!materialise_reverse}, or registering an observer —
    raises [Invalid_argument]. Reads on a frozen graph are safe from
    concurrent threads and domains. There is no thaw; {!copy} returns a
    fresh mutable graph. *)

val is_frozen : t -> bool

(** {1 Whole-graph utilities} *)

val copy : t -> t
(** Deep, independent copy. *)

val edge_universe : t -> Edge.Set.t
(** The edge set [E] as a set value (used as the finite alphabet universe by
    the DFA construction). *)

val pp_edge : t -> Format.formatter -> Edge.t -> unit
(** Name-aware edge printer. *)

val pp_path : t -> Format.formatter -> Path.t -> unit
(** Name-aware path printer. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line [|V|/|E|/|Ω|] summary. *)
