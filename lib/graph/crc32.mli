(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]) over strings.

    Used by the v2 journal format ({!Journal}) to checksum each appended
    record so torn writes and bit rot are detected at replay instead of
    silently corrupting the rebuilt graph. Table-driven; the table is built
    lazily on first use. The check value of ["123456789"] is
    [0xCBF43926l]. *)

val string : string -> int32
(** CRC-32 of a whole string. *)

val update : int32 -> string -> int32
(** [update crc s] extends a running checksum with [s];
    [string s = update 0l s]. *)

val to_hex : int32 -> string
(** Lower-case, zero-padded 8-digit hex rendering (the journal's on-disk
    form). *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}: exactly 8 hex digits, or [None]. *)
