(** Edge-label identifiers (elements of the relation-type set [Omega]). *)
include Id.Make ()
