(** Edge weights as data.

    The algebra itself is weightless — weights enter through the semiring
    evaluators ({!Mrpa_semiring}) as a function [Edge.t -> float]. This
    module is the standard way to build and persist that function: a
    default, per-label overrides, and per-edge overrides, with most-specific
    wins. The text format is line-oriented:

    {v
default<TAB>1.5
label<TAB>rail<TAB>25
edge<TAB>hub_west<TAB>rail<TAB>hub_mid<TAB>27.5
    v}

    Lookups never fail: an edge not mentioned anywhere gets the default. *)

type t

val create : ?default:float -> unit -> t
(** Fresh table; [default] is [1.0] unless given. *)

val default : t -> float
val set_default : t -> float -> unit

val set_label : t -> Label.t -> float -> unit
(** Weight for every edge of a relation type (unless overridden
    per-edge). *)

val set_edge : t -> Edge.t -> float -> unit
(** Most specific override. *)

val weight : t -> Edge.t -> float
(** Per-edge override, else per-label, else default. *)

val to_fun : t -> Edge.t -> float
(** The lookup as a plain function (what the semiring evaluators take). *)

val total : t -> Path.t -> float
(** Sum of edge weights along a path ([0.] on [ε]). *)

(** {1 Persistence} *)

exception Malformed of int * string

val write_channel : Digraph.t -> out_channel -> t -> unit
val read_channel : Digraph.t -> in_channel -> t

val save : Digraph.t -> string -> t -> unit
val load : Digraph.t -> string -> t
(** Names are resolved against the graph; unknown vertex/label names raise
    {!Malformed} with the offending line. *)

val of_string : Digraph.t -> string -> t
val to_string : Digraph.t -> t -> string
