type t = {
  vertex_names : Interner.t;
  label_names : Interner.t;
  mutable edge_count : int;
  (* Adjacency lists hold edges in reverse insertion order; accessors
     re-reverse so observable order is insertion order. *)
  out_adj : Edge.t list ref Vertex.Tbl.t;
  in_adj : Edge.t list ref Vertex.Tbl.t;
  by_label : Edge.t list ref Label.Tbl.t;
  edge_set : unit Edge.Tbl.t;
  mutable insertion : Edge.t list; (* reverse insertion order *)
  mutable added_observers : (Edge.t -> unit) list; (* registration order *)
  mutable removed_observers : (Edge.t -> unit) list;
  mutable frozen : bool;
      (* A frozen graph rejects every mutation, which is what makes sharing
         it across threads/domains sound: all remaining operations are pure
         reads of tables that no longer change. *)
}

let create ?(vertex_capacity = 64) () =
  {
    vertex_names = Interner.create ~capacity:vertex_capacity ();
    label_names = Interner.create ();
    edge_count = 0;
    out_adj = Vertex.Tbl.create vertex_capacity;
    in_adj = Vertex.Tbl.create vertex_capacity;
    by_label = Label.Tbl.create 8;
    edge_set = Edge.Tbl.create (4 * vertex_capacity);
    insertion = [];
    added_observers = [];
    removed_observers = [];
    frozen = false;
  }

let freeze g = g.frozen <- true
let is_frozen g = g.frozen

let check_mutable g what =
  if g.frozen then
    invalid_arg (Printf.sprintf "Digraph.%s: graph is frozen" what)

let vertex g name =
  match Interner.find g.vertex_names name with
  | Some i -> Vertex.of_int i
  | None ->
    check_mutable g "vertex";
    Vertex.of_int (Interner.intern g.vertex_names name)

let label g name =
  match Interner.find g.label_names name with
  | Some i -> Label.of_int i
  | None ->
    check_mutable g "label";
    Label.of_int (Interner.intern g.label_names name)

let find_vertex g name =
  Option.map Vertex.of_int (Interner.find g.vertex_names name)

let find_label g name = Option.map Label.of_int (Interner.find g.label_names name)

let vertex_name g v =
  match Interner.name_opt g.vertex_names (Vertex.to_int v) with
  | Some s -> s
  | None -> invalid_arg "Digraph.vertex_name: unknown vertex id"

let label_name g l =
  match Interner.name_opt g.label_names (Label.to_int l) with
  | Some s -> s
  | None -> invalid_arg "Digraph.label_name: unknown label id"

let known_vertex g v =
  Vertex.to_int v >= 0 && Vertex.to_int v < Interner.cardinal g.vertex_names

let known_label g l =
  Label.to_int l >= 0 && Label.to_int l < Interner.cardinal g.label_names

let bucket tbl_find tbl_add key =
  match tbl_find key with
  | Some r -> r
  | None ->
    let r = ref [] in
    tbl_add key r;
    r

let add_edge g e =
  check_mutable g "add_edge";
  if not (known_vertex g (Edge.tail e)) then
    invalid_arg "Digraph.add_edge: unknown tail vertex";
  if not (known_vertex g (Edge.head e)) then
    invalid_arg "Digraph.add_edge: unknown head vertex";
  if not (known_label g (Edge.label e)) then
    invalid_arg "Digraph.add_edge: unknown label";
  if Edge.Tbl.mem g.edge_set e then false
  else begin
    Edge.Tbl.add g.edge_set e ();
    let out =
      bucket (Vertex.Tbl.find_opt g.out_adj) (Vertex.Tbl.add g.out_adj)
        (Edge.tail e)
    in
    out := e :: !out;
    let inc =
      bucket (Vertex.Tbl.find_opt g.in_adj) (Vertex.Tbl.add g.in_adj)
        (Edge.head e)
    in
    inc := e :: !inc;
    let lab =
      bucket (Label.Tbl.find_opt g.by_label) (Label.Tbl.add g.by_label)
        (Edge.label e)
    in
    lab := e :: !lab;
    g.insertion <- e :: g.insertion;
    g.edge_count <- g.edge_count + 1;
    List.iter (fun f -> f e) g.added_observers;
    true
  end

let add g tail_name label_name_ head_name =
  (* Intern left to right so naming order determines id order. *)
  let tail = vertex g tail_name in
  let lab = label g label_name_ in
  let head = vertex g head_name in
  let e = Edge.make ~tail ~label:lab ~head in
  let (_ : bool) = add_edge g e in
  e

let remove_from_bucket tbl_find key e =
  match tbl_find key with
  | None -> ()
  | Some r -> r := List.filter (fun f -> not (Edge.equal e f)) !r

let remove_edge g e =
  check_mutable g "remove_edge";
  if not (Edge.Tbl.mem g.edge_set e) then false
  else begin
    Edge.Tbl.remove g.edge_set e;
    remove_from_bucket (Vertex.Tbl.find_opt g.out_adj) (Edge.tail e) e;
    remove_from_bucket (Vertex.Tbl.find_opt g.in_adj) (Edge.head e) e;
    remove_from_bucket (Label.Tbl.find_opt g.by_label) (Edge.label e) e;
    g.insertion <- List.filter (fun f -> not (Edge.equal e f)) g.insertion;
    g.edge_count <- g.edge_count - 1;
    List.iter (fun f -> f e) g.removed_observers;
    true
  end

let n_vertices g = Interner.cardinal g.vertex_names
let n_edges g = g.edge_count
let n_labels g = Interner.cardinal g.label_names
let mem_edge g e = Edge.Tbl.mem g.edge_set e
let mem_vertex g v = known_vertex g v
let vertices g = List.init (n_vertices g) Vertex.of_int
let labels g = List.init (n_labels g) Label.of_int
let edges g = List.rev g.insertion
let iter_edges f g = List.iter f (edges g)
let fold_edges f g acc = List.fold_left (fun acc e -> f e acc) acc (edges g)

let bucket_list tbl_find key =
  match tbl_find key with None -> [] | Some r -> List.rev !r

let out_edges g v = bucket_list (Vertex.Tbl.find_opt g.out_adj) v
let in_edges g v = bucket_list (Vertex.Tbl.find_opt g.in_adj) v
let edges_with_label g l = bucket_list (Label.Tbl.find_opt g.by_label) l

let out_degree g v =
  match Vertex.Tbl.find_opt g.out_adj v with
  | None -> 0
  | Some r -> List.length !r

let in_degree g v =
  match Vertex.Tbl.find_opt g.in_adj v with
  | None -> 0
  | Some r -> List.length !r

let degree g v = out_degree g v + in_degree g v

let successors g ?label:lab v =
  let es = out_edges g v in
  let es =
    match lab with
    | None -> es
    | Some l -> List.filter (fun e -> Label.equal (Edge.label e) l) es
  in
  List.map Edge.head es

let predecessors g ?label:lab v =
  let es = in_edges g v in
  let es =
    match lab with
    | None -> es
    | Some l -> List.filter (fun e -> Label.equal (Edge.label e) l) es
  in
  List.map Edge.tail es

let on_edge_added g f =
  check_mutable g "on_edge_added";
  g.added_observers <- g.added_observers @ [ f ]

let on_edge_removed g f =
  check_mutable g "on_edge_removed";
  g.removed_observers <- g.removed_observers @ [ f ]

(* Deregistration is by physical equality: the caller detaches exactly the
   closure it registered. Detaching on a frozen graph is allowed — it only
   matters for graphs that can still fire, but refusing it would make
   teardown order-sensitive. *)
let off_edge_added g f =
  g.added_observers <- List.filter (fun o -> o != f) g.added_observers

let off_edge_removed g f =
  g.removed_observers <- List.filter (fun o -> o != f) g.removed_observers

let materialise_reverse g ?(suffix = "_rev") alpha =
  let rev = label g (label_name g alpha ^ suffix) in
  List.iter
    (fun e ->
      ignore
        (add_edge g
           (Edge.make ~tail:(Edge.head e) ~label:rev ~head:(Edge.tail e))))
    (edges_with_label g alpha);
  rev

let copy g =
  let h = create ~vertex_capacity:(max 1 (n_vertices g)) () in
  (* Re-intern names in id order so ids are preserved. *)
  List.iter
    (fun (_, name) -> ignore (vertex h name))
    (Interner.to_list g.vertex_names);
  List.iter
    (fun (_, name) -> ignore (label h name))
    (Interner.to_list g.label_names);
  iter_edges (fun e -> ignore (add_edge h e)) g;
  h

let edge_universe g = Edge.Set.of_list (edges g)

let pp_edge g fmt e =
  Edge.pp_named ~vertex_name:(vertex_name g) ~label_name:(label_name g) fmt e

let pp_path g fmt p =
  Path.pp_named ~vertex_name:(vertex_name g) ~label_name:(label_name g) fmt p

let pp_stats fmt g =
  Format.fprintf fmt "|V|=%d |E|=%d |Omega|=%d" (n_vertices g) (n_edges g)
    (n_labels g)
