(** Deterministic pseudo-random number generator (splitmix64).

    Every synthetic workload in this repository is driven by this generator so
    that experiments are reproducible bit-for-bit across runs and machines.
    The state is explicit and mutable; independent streams are obtained with
    {!split}. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range g ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on an
    empty list. *)

val geometric : t -> float -> int
(** [geometric g p] draws from the geometric distribution with success
    probability [p] (number of failures before first success, so the result
    is [>= 0]). Requires [0 < p <= 1]. *)
