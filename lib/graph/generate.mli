(** Synthetic multi-relational graph workloads.

    The paper has no datasets; every experiment in this repository draws its
    graphs from the deterministic generators below (see DESIGN.md §2 for the
    substitution rationale). All generators name vertices ["v0" .. "v<n-1>"]
    (unless stated otherwise) and labels ["r0" .. "r<k-1>"], so vertex id [i]
    is literally the integer [i]. *)

val uniform :
  rng:Prng.t -> n_vertices:int -> n_edges:int -> n_labels:int -> Digraph.t
(** Uniform multi-relational Erdős–Rényi-style graph [G(n, m, |Ω|)]: [m]
    distinct edges drawn uniformly from [V × Ω × V]. Raises
    [Invalid_argument] when more edges are requested than distinct triples
    exist. *)

val preferential :
  rng:Prng.t -> n_vertices:int -> out_degree:int -> n_labels:int -> Digraph.t
(** Preferential attachment: vertices arrive in order; each new vertex emits
    up to [out_degree] edges whose heads are chosen proportionally to
    (1 + in-degree) among earlier vertices, with uniform labels. Produces the
    heavy-tailed in-degree distributions typical of real multi-relational
    data. *)

val ring : n:int -> n_labels:int -> Digraph.t
(** Directed cycle [v0 → v1 → … → v0]; edge [i] carries label
    [r(i mod n_labels)]. Worst case for unanchored traversals: every
    complete-traversal step keeps all paths alive. *)

val lattice : rows:int -> cols:int -> Digraph.t
(** Grid DAG with labels ["right"] and ["down"]; vertex names are
    ["x<r>_<c>"]. Closed-form path counts make it a good oracle workload. *)

val star : n_leaves:int -> Digraph.t
(** Hub ["hub"] with ["spoke"]-labeled edges to [n_leaves] leaves. *)

val complete : n:int -> n_labels:int -> Digraph.t
(** All [n·(n-1)·|Ω|] non-loop edges. Dense worst case; keep [n] small. *)

val layered :
  rng:Prng.t ->
  layers:int ->
  width:int ->
  fanout:int ->
  n_labels:int ->
  Digraph.t
(** Layered DAG: [layers] layers of [width] vertices; each vertex has
    [fanout] random edges into the next layer with uniform labels. Vertex
    names are ["l<layer>_<slot>"]. All paths flow forward, so path counts
    grow geometrically with traversal depth — the shape §III's restriction
    argument needs. *)

val social :
  rng:Prng.t -> n_people:int -> n_orgs:int -> n_projects:int -> Digraph.t
(** Typed "social network" schema used by EXP-T6 and the examples: people
    ["p<i>"], organisations ["org<i>"], projects ["proj<i>"]; labels
    [knows], [works_for], [member_of], [created], [likes]. Person–person
    [knows] edges follow preferential attachment; affiliation edges are
    uniform. *)

val knowledge_base : rng:Prng.t -> n_entities:int -> Digraph.t
(** RDF-ish movie-domain graph: entities split among people, films and
    cities; labels [acted_in], [directed], [influenced], [married_to],
    [born_in], [set_in]. *)

val bipartite :
  rng:Prng.t -> left:int -> right:int -> n_edges:int -> n_labels:int -> Digraph.t
(** Random bipartite graph: all edges run from a left part (["l<i>"]) to a
    right part (["r<i>"]) with uniform labels. Raises [Invalid_argument]
    when more edges are requested than distinct (left, label, right)
    triples. *)

val tree : branching:int -> depth:int -> Digraph.t
(** Complete rooted [branching]-ary tree of the given [depth] under a
    single ["child"] relation; vertices ["n0"] (root), ["n1"], … in BFS
    order. Closed-form path counts make it an oracle workload. *)

val fig1 :
  rng:Prng.t -> n_noise_vertices:int -> n_noise_edges:int -> Digraph.t
(** A graph guaranteed to exercise every branch of the paper's Figure 1
    automaton: distinguished vertices ["i"], ["j"], ["k"] and labels
    ["alpha"], ["beta"], wired so that α-emanation from [i], β-chains, the
    [(j,α,i)] back edge and α-arrivals at [j] and [k] all exist; plus
    uniform noise to keep recognizers honest. *)
