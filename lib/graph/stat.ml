type degree_summary = {
  min_degree : int;
  max_degree : int;
  mean : float;
  median : float;
}

let summarise degrees =
  match degrees with
  | [] -> { min_degree = 0; max_degree = 0; mean = 0.0; median = 0.0 }
  | _ ->
    let sorted = List.sort Int.compare degrees in
    let n = List.length sorted in
    let arr = Array.of_list sorted in
    let total = Array.fold_left ( + ) 0 arr in
    let median =
      if n mod 2 = 1 then float_of_int arr.(n / 2)
      else float_of_int (arr.((n / 2) - 1) + arr.(n / 2)) /. 2.0
    in
    {
      min_degree = arr.(0);
      max_degree = arr.(n - 1);
      mean = float_of_int total /. float_of_int n;
      median;
    }

let out_degrees g =
  summarise (List.map (Digraph.out_degree g) (Digraph.vertices g))

let in_degrees g =
  summarise (List.map (Digraph.in_degree g) (Digraph.vertices g))

let out_degrees_of_label g alpha =
  let per_vertex = Vertex.Tbl.create 16 in
  List.iter
    (fun e ->
      let t = Edge.tail e in
      Vertex.Tbl.replace per_vertex t
        (1 + Option.value ~default:0 (Vertex.Tbl.find_opt per_vertex t)))
    (Digraph.edges_with_label g alpha);
  summarise
    (List.map
       (fun v -> Option.value ~default:0 (Vertex.Tbl.find_opt per_vertex v))
       (Digraph.vertices g))

let density g =
  let n = Digraph.n_vertices g and k = Digraph.n_labels g in
  if n = 0 || k = 0 then nan
  else float_of_int (Digraph.n_edges g) /. float_of_int (n * n * k)

let reciprocity g =
  let m = Digraph.n_edges g in
  if m = 0 then nan
  else begin
    let mirrored =
      Digraph.fold_edges
        (fun e acc ->
          if Digraph.mem_edge g (Edge.reverse e) then acc + 1 else acc)
        g 0
    in
    float_of_int mirrored /. float_of_int m
  end

let label_histogram g =
  List.map
    (fun l -> (l, List.length (Digraph.edges_with_label g l)))
    (Digraph.labels g)
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

(* label sets per ordered vertex pair *)
let pair_labels g =
  let tbl : (int * int, Label.Set.t) Hashtbl.t = Hashtbl.create 64 in
  Digraph.iter_edges
    (fun e ->
      let key = (Vertex.to_int (Edge.tail e), Vertex.to_int (Edge.head e)) in
      let existing =
        match Hashtbl.find_opt tbl key with
        | Some s -> s
        | None -> Label.Set.empty
      in
      Hashtbl.replace tbl key (Label.Set.add (Edge.label e) existing))
    g;
  tbl

let parallel_pairs g =
  Hashtbl.fold
    (fun _ labels acc -> if Label.Set.cardinal labels > 1 then acc + 1 else acc)
    (pair_labels g) 0

let label_cooccurrence g =
  let counts : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ labels ->
      let ls = Label.Set.elements labels in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if Label.compare a b <= 0 then begin
                let key = (Label.to_int a, Label.to_int b) in
                Hashtbl.replace counts key
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
              end)
            ls)
        ls)
    (pair_labels g);
  Hashtbl.fold
    (fun (a, b) c acc -> (Label.of_int a, Label.of_int b, c) :: acc)
    counts []
  |> List.sort compare

(* --- Per-label degree/selectivity profile ------------------------------- *)

type label_profile = {
  label : Label.t;
  edges : int;
  distinct_tails : int;
  distinct_heads : int;
  max_out : int;
  max_in : int;
  out_histogram : (int * int) list;
  in_histogram : (int * int) list;
}

type profile = {
  vertices : int;
  edges : int;
  labels : int;
  max_out_degree : int;
  max_in_degree : int;
  per_label : label_profile array;
}

let histogram_of_counts tbl =
  let freq = Hashtbl.create 16 in
  Vertex.Tbl.iter
    (fun _ d ->
      Hashtbl.replace freq d (1 + Option.value ~default:0 (Hashtbl.find_opt freq d)))
    tbl;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) freq [] |> List.sort compare

let max_count tbl =
  Vertex.Tbl.fold (fun _ d acc -> max d acc) tbl 0

(* One pass over the edge set builds every per-label table; the global
   degree maxima come from the graph's own adjacency counts. *)
let profile g =
  let k = Digraph.n_labels g in
  let out_of = Array.init k (fun _ -> Vertex.Tbl.create 8) in
  let in_of = Array.init k (fun _ -> Vertex.Tbl.create 8) in
  let bump tbl v =
    Vertex.Tbl.replace tbl v
      (1 + Option.value ~default:0 (Vertex.Tbl.find_opt tbl v))
  in
  let edge_count = Array.make k 0 in
  Digraph.iter_edges
    (fun e ->
      let l = Label.to_int (Edge.label e) in
      edge_count.(l) <- edge_count.(l) + 1;
      bump out_of.(l) (Edge.tail e);
      bump in_of.(l) (Edge.head e))
    g;
  let per_label =
    Array.init k (fun l ->
        {
          label = Label.of_int l;
          edges = edge_count.(l);
          distinct_tails = Vertex.Tbl.length out_of.(l);
          distinct_heads = Vertex.Tbl.length in_of.(l);
          max_out = max_count out_of.(l);
          max_in = max_count in_of.(l);
          out_histogram = histogram_of_counts out_of.(l);
          in_histogram = histogram_of_counts in_of.(l);
        })
  in
  let vertices = Digraph.vertices g in
  {
    vertices = Digraph.n_vertices g;
    edges = Digraph.n_edges g;
    labels = k;
    max_out_degree =
      List.fold_left (fun acc v -> max acc (Digraph.out_degree g v)) 0 vertices;
    max_in_degree =
      List.fold_left (fun acc v -> max acc (Digraph.in_degree g v)) 0 vertices;
    per_label;
  }

let label_profile p l =
  let i = Label.to_int l in
  if i >= 0 && i < Array.length p.per_label then Some p.per_label.(i) else None

let degree_histogram g =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let d = Digraph.out_degree g v in
      Hashtbl.replace counts d
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
    (Digraph.vertices g);
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts [] |> List.sort compare

let pp_report fmt g =
  Format.fprintf fmt "@[<v>%a@," Digraph.pp_stats g;
  Format.fprintf fmt "density: %.6f  reciprocity: %.3f  parallel pairs: %d@,"
    (density g) (reciprocity g) (parallel_pairs g);
  let od = out_degrees g and id = in_degrees g in
  Format.fprintf fmt
    "out-degree: min %d max %d mean %.2f median %.1f@,in-degree:  min %d max %d mean %.2f median %.1f@,"
    od.min_degree od.max_degree od.mean od.median id.min_degree id.max_degree
    id.mean id.median;
  let prof = profile g in
  Format.fprintf fmt "labels:@,";
  List.iter
    (fun (l, c) ->
      match label_profile prof l with
      | Some lp ->
        Format.fprintf fmt
          "  %-20s %d edges (%d tails, %d heads, max out %d, max in %d)@,"
          (Digraph.label_name g l) c lp.distinct_tails lp.distinct_heads
          lp.max_out lp.max_in
      | None ->
        Format.fprintf fmt "  %-20s %d edges@," (Digraph.label_name g l) c)
    (label_histogram g);
  Format.fprintf fmt "@]"
