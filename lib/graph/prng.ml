type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = next_int64 g in
  { state = seed }

(* Non-negative 62-bit int from the raw output. *)
let next_nonneg g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max = 0x3FFF_FFFF_FFFF_FFFF in
  let limit = max - (max mod bound) in
  let rec loop () =
    let v = next_nonneg g in
    if v < limit then v mod bound else loop ()
  in
  loop ()

let int_in_range g ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int g (hi - lo + 1)

let float g bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bernoulli g p = float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ :: _ -> List.nth l (int g (List.length l))

let geometric g p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p out of (0,1]";
  if p >= 1.0 then 0
  else
    let u = float g 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
