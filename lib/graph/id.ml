module type S = sig
  type t = int

  val of_int : int -> t
  val to_int : t -> int
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t

  val set_of_list : t list -> Set.t
end

module Make () : S = struct
  type t = int

  let of_int i = i
  let to_int i = i
  let compare = Int.compare
  let equal = Int.equal
  let hash i = i land max_int
  let pp fmt i = Format.pp_print_int fmt i

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Hashed = struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end

  module Set = Set.Make (Ord)
  module Map = Map.Make (Ord)
  module Tbl = Hashtbl.Make (Hashed)

  let set_of_list l = Set.of_list l
end
