(** Plain-text serialisation of multi-relational graphs.

    The format is one edge per line, [tail<TAB>label<TAB>head], with ['#']
    comment lines and blank lines ignored. Isolated vertices are persisted as
    [vertex<TAB>name] directives so that reading back a written graph
    reproduces [V] exactly, not just the endpoints of [E]. *)

exception Malformed of int * string
(** [Malformed (line_number, line)] on unparseable input. *)

val write_channel : out_channel -> Digraph.t -> unit
(** Writes the graph; deterministic: vertices in id order, edges in insertion
    order. *)

val read_channel : in_channel -> Digraph.t
(** Parses a graph written by {!write_channel} (or by hand). Raises
    {!Malformed} on bad lines. *)

val save : string -> Digraph.t -> unit
(** [save path g] writes to a file. *)

val load : string -> Digraph.t
(** [load path] reads from a file. *)

val of_string : string -> Digraph.t
(** Parse from an in-memory string — handy for tests and examples. *)

val to_string : Digraph.t -> string
