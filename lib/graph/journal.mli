(** Durable graphs: an append-only, checksummed change journal.

    A production traversal engine must survive restarts {e and} crashes.
    The journal subscribes to a graph's change notifications and appends
    one record per mutation to a log file. Two on-disk formats exist:

    {v
v1 (legacy, read-only):   add<TAB>tail<TAB>label<TAB>head
v2 (written by default):  #mrpa.journal/2          (header line)
                          SEQ<TAB>CRC<TAB>add<TAB>tail<TAB>label<TAB>head
    v}

    v2 frames every record with a 1-based sequence number and the CRC-32
    ({!Crc32}) of ["SEQ\tPAYLOAD"], so torn writes, bit rot and lost
    records are {e detected} at replay instead of silently corrupting the
    rebuilt graph. Payload kinds are [add]/[del]/[vertex] as in v1; blank
    lines and lines starting with ['#'] are comments in both formats.

    {2 Durability contract}

    - {!attach} to a new (or empty) file creates a v2 journal; attaching
      to an existing v1 log keeps appending v1 (read compatibility), and
      {!compact} — which always writes v2 — is the upgrade path.
    - Writes go straight to the file descriptor, one record per
      {!Io_fault.write} (crash durability up to the OS page cache; call
      {!sync} for fsync semantics).
    - A crash can cost {e at most the final record}: {!replay_into} and
      {!attach} tolerate a torn trailing record (warn, drop, and — on
      attach — physically truncate it), while any {e mid-file} corruption
      is a hard [Failure] in replay. {!recover} is the salvage mode: it
      skips-and-reports corrupt records and {!repair} rewrites the file
      (always as v2) from what survived; [mrpa fsck] is its CLI.
    - Every file-system side effect is routed through {!Io_fault}, so
      tests can prove the above by injecting a failure at each crash
      point.

    The journal records mutations made {e through the graph} after
    attachment — mutations before attachment are only captured by the
    initial replay or by {!compact}. *)

type t

type version = V1 | V2

val attach :
  ?replay_existing:bool -> ?on_warning:(string -> unit) -> Digraph.t -> string -> t
(** [attach g path] opens (creating if needed) the journal at [path] and
    subscribes to [g]. With [~replay_existing:true] (default), entries
    already in the log are applied to [g] first — the common
    open-the-database pattern. A torn trailing record is reported through
    [on_warning] (default: stderr), dropped, and truncated from the file;
    mid-file corruption raises [Failure] — run {!recover} / [mrpa fsck]
    instead of guessing. New or empty files become v2; existing files keep
    their format for subsequent appends. *)

val replay : string -> Digraph.t
(** Rebuild a fresh graph from a log without attaching. *)

val replay_into : ?on_warning:(string -> unit) -> Digraph.t -> string -> unit
(** Apply an existing log to [g]. Tolerates a torn final record (reported
    via [on_warning], default stderr); raises [Failure] on mid-file
    corruption or an unsupported format header. Missing files are treated
    as empty. *)

val record_vertex : t -> Digraph.t -> string -> unit
(** [record_vertex j g name] interns [name] in [g] (isolated if new) and
    appends a [vertex] record. Needed explicitly because interning — unlike
    edge insertion/removal — fires no change observer for the journal to
    record. *)

val log_path : t -> string

val entries_written : t -> int
(** Mutations appended through this handle (diagnostic). *)

val format_version : t -> version
(** The format this handle is appending in. *)

val sync : t -> unit
(** Flush and [fsync] the log file. An [fsync] {e error} is swallowed but
    never silent: it increments {!fsync_errors} and the first occurrence
    is reported through the journal's [on_warning] sink, because a failed
    fsync is exactly the moment durability was lost. *)

val fsync_errors : t -> int
(** Number of fsync failures swallowed by {!sync} so far. *)

val compact : t -> unit
(** Atomically replace the log with a v2 snapshot of the graph's current
    state (vertex records then add records, resequenced from 1).
    Subsequent mutations append after the snapshot. Crash-safe: the
    snapshot is written and fsynced to a tmp file before the live log is
    touched, and the append descriptor is reopened even when a step raises
    — a failed compaction never leaves the journal with a closed handle or
    a truncated log. Compacting a v1 journal upgrades it to v2. *)

val close : t -> unit
(** Flush, close, and detach the journal's observers from the graph. The
    journal stops recording (the graph remains usable); further mutations
    are {e not} logged, and repeated attach/close cycles do not accumulate
    dead callbacks on the graph. *)

(** {1 Recovery}

    The closed corruption taxonomy: every way a journal can disagree with
    its own framing. [mrpa fsck] renders these verbatim. *)

type corruption =
  | Torn_tail of { offset : int; bytes : int }
      (** Unterminated trailing fragment that is not a complete valid
          record — the signature of a crash mid-write. [offset] is where
          the valid portion ends. *)
  | Bad_checksum of { lineno : int }  (** v2 record whose CRC does not match. *)
  | Bad_sequence of { lineno : int; expected : int; found : int }
      (** v2 record whose sequence number jumps — records were lost or
          reordered (not reported again right after a skipped record). *)
  | Malformed of { lineno : int; text : string }
      (** Line that is not a record, a comment, or a v2 frame. *)
  | Unapplied of { lineno : int; reason : string }
      (** Well-formed record that cannot be applied (e.g. deletes an
          unknown vertex). *)

val describe_corruption : corruption -> string
val pp_corruption : Format.formatter -> corruption -> unit

type recovery = {
  r_path : string;
  graph : Digraph.t;  (** graph rebuilt from every salvageable record. *)
  format : version;
  applied : int;  (** records applied. *)
  corruptions : corruption list;  (** in file order. *)
  payloads : string list;  (** applied record payloads, in order. *)
  stale_tmp : string option;
      (** leftover [.compact] tmp from a crashed compaction, if any. *)
}

val recover : string -> (recovery, string) result
(** Best-effort salvage of a journal: apply every record that parses,
    checksums, and applies; skip and report the rest; logically truncate a
    torn tail. Read-only — the file is not modified (that is {!repair}).
    [Error] is reserved for the genuinely unrecoverable: an unreadable
    file or an unsupported format header. *)

val is_clean : recovery -> bool
(** No corruption and no stale compaction tmp. *)

val repair : recovery -> unit
(** Rewrite the journal from {!recovery.payloads} as a fresh v2 file —
    atomically (tmp + fsync + rename) — and delete any stale compaction
    tmp. After [repair r], [recover] of the same path is clean and replays
    to exactly [r.graph]. *)

(** {1 Streaming}

    The framing primitives, exposed so the replication layer
    ([Mrpa_server.Replication]) can tail a journal, re-frame records onto
    a wire, and validate them on the receiving side with the exact same
    code paths the on-disk format uses. *)

val v2_header : string
(** The v2 header line (["#mrpa.journal/2"]), without trailing newline. *)

val is_comment : string -> bool
(** Blank lines and lines starting with ['#'] — never records. *)

type frame = Frame of int * string | Bad_crc | Not_frame
    (** [Frame (seq, payload)] is a v2 record line whose CRC checks out;
        [Bad_crc] framed but corrupt; [Not_frame] not a v2 record at all. *)

val parse_frame : string -> frame
(** Parse one line (no trailing newline) of a v2 journal or record
    stream. *)

val frame : seq:int -> string -> string
(** [frame ~seq payload] renders the v2 record line ["SEQ\tCRC\tPAYLOAD"]
    (no trailing newline) such that [parse_frame (frame ~seq p) = Frame
    (seq, p)]. *)

val apply_payload : Digraph.t -> string -> (unit, string) result
(** Apply one [add]/[del]/[vertex] payload to [g]; [Error reason] when the
    payload is malformed or cannot be applied (e.g. deletes an unknown
    vertex). *)
