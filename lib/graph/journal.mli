(** Durable graphs: an append-only change journal.

    A production traversal engine must survive restarts. The journal
    subscribes to a graph's change notifications and appends one line per
    mutation to a log file:

    {v
add<TAB>tail<TAB>label<TAB>head
del<TAB>tail<TAB>label<TAB>head
vertex<TAB>name
    v}

    {!replay} folds a log back into a graph; {!attach} optionally replays an
    existing log first and then continues appending, so
    [attach (Digraph.create ()) path] is "open or create the database".
    {!compact} rewrites the log as a minimal snapshot (current state only).

    Writes are flushed per entry (crash durability up to the OS's page
    cache; call {!sync} for fsync semantics). The journal records mutations
    made {e through the graph} after attachment — mutations before
    attachment are only captured by the initial snapshot {!compact} or by
    attaching to a fresh graph. *)

type t

val attach : ?replay_existing:bool -> Digraph.t -> string -> t
(** [attach g path] opens (creating if needed) the journal at [path] and
    subscribes to [g]. With [~replay_existing:true] (default), entries
    already in the log are applied to [g] first — the common
    open-the-database pattern. Raises [Io.Malformed]-style
    [Failure] on corrupt logs. *)

val replay : string -> Digraph.t
(** Rebuild a fresh graph from a log without attaching. *)

val log_path : t -> string

val entries_written : t -> int
(** Mutations appended through this handle (diagnostic). *)

val sync : t -> unit
(** Flush and [fsync] the log file. *)

val compact : t -> unit
(** Atomically replace the log with a snapshot of the graph's current state
    (vertex lines then add lines). Subsequent mutations append after the
    snapshot. Crash-safe: the snapshot is written and fsynced to a tmp file
    before the live log is touched, and the append channel is reopened even
    when a step raises — a failed compaction never leaves the journal with
    a closed channel (or a truncated log). *)

val close : t -> unit
(** Flush, close, and detach the journal's observers from the graph. The
    journal stops recording (the graph remains usable); further mutations
    are {e not} logged, and repeated attach/close cycles do not accumulate
    dead callbacks on the graph. *)
