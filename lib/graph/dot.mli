(** Graphviz export of multi-relational graphs.

    Edge labels become edge attributes; each relation type gets a distinct
    pen colour (cycled from a small palette) so the "multiple relations over
    one vertex set" structure (paper §I) is visible at a glance. *)

val to_string : ?name:string -> Digraph.t -> string
(** DOT source for the graph. *)

val save : ?name:string -> string -> Digraph.t -> unit
(** [save path g] writes DOT source to [path]. *)
