type t = { tail : Vertex.t; label : Label.t; head : Vertex.t }

let make ~tail ~label ~head = { tail; label; head }
let v tail label head = { tail; label; head }
let tail e = e.tail
let head e = e.head
let label e = e.label
let is_loop e = Vertex.equal e.tail e.head
let reverse e = { e with tail = e.head; head = e.tail }
let adjacent e f = Vertex.equal e.head f.tail

let compare e f =
  let c = Vertex.compare e.tail f.tail in
  if c <> 0 then c
  else
    let c = Label.compare e.label f.label in
    if c <> 0 then c else Vertex.compare e.head f.head

let equal e f =
  Vertex.equal e.tail f.tail && Label.equal e.label f.label
  && Vertex.equal e.head f.head

let hash e = (((e.tail * 1000003) lxor e.label) * 1000003) lxor e.head

let pp fmt e =
  Format.fprintf fmt "(%a,%a,%a)" Vertex.pp e.tail Label.pp e.label Vertex.pp
    e.head

let pp_named ~vertex_name ~label_name fmt e =
  Format.fprintf fmt "(%s,%s,%s)" (vertex_name e.tail) (label_name e.label)
    (vertex_name e.head)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
