(** Deterministic I/O fault injection for durability testing.

    The journal ({!Journal}) performs every file-system side effect through
    this module's instrumented primitives. In production nothing is armed
    and each primitive is its underlying syscall plus one counter
    increment. Under test, {!arm} schedules exactly one failure at the
    [N]-th occurrence of a chosen operation — mirroring the engine's
    [--inject-fault REASON\@N] budget faults ({!Mrpa_engine.Budget}), but at
    the I/O layer — which makes every crash point of [append]/[sync]/
    [compact] reachable deterministically, so a test matrix can prove that
    {!Journal.recover} restores a prefix-consistent graph from {e any}
    crash.

    Two failure modes:
    - {!Crash} simulates the process dying at that point: the primitive
      raises {!Injected} {e before} completing its effect — except
      {!write}, which first writes a torn prefix (half the bytes), the
      realistic shape of a power cut mid-write.
    - [Errno e] simulates a flaky disk: the primitive raises
      [Unix.Unix_error (e, _, _)] without performing its effect, which is
      how the fsync-error accounting of {!Journal.sync} is tested.

    A fault fires once and disarms itself, so recovery code running after
    the "crash" performs real I/O. Global, not thread-safe: the fault plane
    is test infrastructure, armed only from single-threaded tests. *)

type op = Write | Flush | Fsync | Rename | Close

type mode =
  | Crash  (** raise {!Injected}; {!write} tears the record first. *)
  | Errno of Unix.error  (** raise [Unix.Unix_error] instead. *)

exception Injected of op * int
(** [(op, n)]: the armed fault fired at the [n]-th occurrence of [op]. *)

val op_name : op -> string
(** ["write" | "flush" | "fsync" | "rename" | "close"]. *)

val op_of_name : string -> op option

val arm : ?mode:mode -> op -> at:int -> unit
(** Schedule one failure at the [at]-th ([>= 1]) occurrence of [op],
    counting from now (arming resets the occurrence counters). At most one
    fault is armed at a time; re-arming replaces. Default mode {!Crash}. *)

val disarm : unit -> unit
(** Cancel any armed fault (idempotent; firing also disarms). *)

val armed : unit -> (op * int) option

(** {1 Instrumented primitives} *)

val write : Unix.file_descr -> string -> unit
(** Write the whole string (looping on short writes). A {!Crash} fault
    writes only the first half of the bytes before raising — a torn
    record. *)

val flush : unit -> unit
(** A pure crash point: application-level buffers would be lost here. The
    journal writes through an unbuffered fd, so on success this is a
    no-op; it exists so the classic write/flush/fsync crash windows all
    appear in the matrix. *)

val fsync : Unix.file_descr -> unit
val rename : string -> string -> unit
val close : Unix.file_descr -> unit

val op_count : op -> int
(** Occurrences of [op] since the last {!arm} (diagnostic). *)
