(** GraphML export.

    GraphML is the interchange format the property-graph ecosystem around
    the paper's authors (Gremlin/TinkerPop, Neo4j tooling) reads; edge
    labels are emitted as the standard [labelE] edge attribute and vertex
    names as [labelV]. Export only — reading arbitrary XML is out of scope
    for this library (the native format is {!Io}'s TSV). *)

val to_string : ?graph_name:string -> Digraph.t -> string
(** GraphML document for the graph. Deterministic: vertices in id order,
    edges in insertion order. *)

val save : ?graph_name:string -> string -> Digraph.t -> unit
(** [save path g] writes the document to [path]. *)
