(** Paths: the free monoid [E*] over edges (paper, Definition 1).

    A path is a finite sequence of edges; the empty sequence [ε] is the
    monoid identity for concatenation [∘]. A path may repeat edges and is
    {e not} required to be joint — jointness (Definition 3) is a predicate,
    and the concatenative join of {!Path_set} is what produces joint paths.

    Paper-to-API dictionary:
    - [‖a‖]    → {!length}
    - [a ∘ b]  → {!concat}
    - [σ(a,n)] → {!nth} (1-indexed, as in the paper)
    - [γ⁻(a)]  → {!tail} / {!tail_exn}
    - [γ⁺(a)]  → {!head} / {!head_exn}
    - [ω′(a)]  → {!label_word}
    - [f(a)]   → {!is_joint} *)

type t
(** Immutable path. *)

val empty : t
(** The identity element [ε]. *)

val is_empty : t -> bool

val of_edge : Edge.t -> t
(** An edge is a path of length 1 ([E ⊂ E*]). *)

val of_edges : Edge.t list -> t
(** Path from an edge sequence, in order. [of_edges [] = empty]. *)

val of_array : Edge.t array -> t
(** Like {!of_edges}; the array is copied. *)

val concat : t -> t -> t
(** [concat a b] is [a ∘ b]. Associative, with {!empty} as identity; it does
    not require adjacency (use {!Path_set.join} for joint concatenation). *)

val ( ^. ) : t -> t -> t
(** Infix alias for {!concat}. *)

val length : t -> int
(** [‖a‖]: the number of edges. [length empty = 0]. *)

val nth : t -> int -> Edge.t
(** [nth a n] is [σ(a,n)], the n-th edge with [n] in [1 .. ‖a‖] as in the
    paper. Raises [Invalid_argument] outside that range (in particular on
    [ε], where no edge exists). *)

val nth_opt : t -> int -> Edge.t option

val tail : t -> Vertex.t option
(** [γ⁻(a)]: first vertex of the path; [None] on [ε]. *)

val head : t -> Vertex.t option
(** [γ⁺(a)]: last vertex of the path; [None] on [ε]. *)

val tail_exn : t -> Vertex.t
(** Like {!tail}; raises [Invalid_argument] on [ε]. *)

val head_exn : t -> Vertex.t
(** Like {!head}; raises [Invalid_argument] on [ε]. *)

val label_word : t -> Label.t list
(** [ω′(a) ∈ Ω*]: the word of edge labels along the path (Definition 2). *)

val is_joint : t -> bool
(** Definition 3: [true] iff every consecutive pair of edges is adjacent
    ([γ⁺(σ(a,n)) = γ⁻(σ(a,n+1))]). Paths of length 0 and 1 are joint. *)

val is_simple : t -> bool
(** Is the vertex itinerary ({!vertices}) duplicate-free? This is the
    "simple path" of Mendelzon & Wood (the paper's ref. [8], regular
    {e simple} paths): no vertex visited twice, so loops and revisits are
    excluded. [ε] and any non-loop single edge are simple. *)

val adjacent : t -> t -> bool
(** [adjacent a b] holds when [a ∘ b] keeps the boundary joint, i.e. when
    [a = ε], [b = ε], or [γ⁺(a) = γ⁻(b)] — exactly the side condition of the
    concatenative join. *)

val edges : t -> Edge.t list
(** The edge sequence, in order. *)

val to_array : t -> Edge.t array
(** Fresh array of the edges, in order. *)

val vertices : t -> Vertex.t list
(** The vertex itinerary of a {e joint} path: [‖a‖ + 1] vertices for a
    non-empty path, [[]] for [ε]. For a disjoint path the itinerary still
    lists [γ⁻] of every edge followed by the final [γ⁺] — boundary gaps are
    simply where consecutive entries disagree with the edge structure. *)

val iter : (Edge.t -> unit) -> t -> unit
val fold : ('acc -> Edge.t -> 'acc) -> 'acc -> t -> 'acc
val for_all : (Edge.t -> bool) -> t -> bool
val exists : (Edge.t -> bool) -> t -> bool

val sub : t -> pos:int -> len:int -> t
(** [sub a ~pos ~len] is the subpath of [len] edges starting at 1-indexed
    position [pos]. Raises [Invalid_argument] when out of range. *)

val visits : t -> Vertex.t -> bool
(** Does a joint path pass through the given vertex (as any [γ⁻] or the
    final [γ⁺])? *)

val compare : t -> t -> int
(** Total order: by length, then lexicographically by {!Edge.compare}. *)

val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [ε] for the empty path, otherwise the flattened vertex/label
    string of the paper, e.g. [(i,α,j,j,β,k)]. *)

val pp_named :
  vertex_name:(Vertex.t -> string) ->
  label_name:(Label.t -> string) ->
  Format.formatter ->
  t ->
  unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
