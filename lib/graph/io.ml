exception Malformed of int * string

let write_channel oc g =
  output_string oc "# mrpa multi-relational graph\n";
  (* Persist every vertex so isolated vertices survive a round-trip. *)
  List.iter
    (fun v -> Printf.fprintf oc "vertex\t%s\n" (Digraph.vertex_name g v))
    (Digraph.vertices g);
  Digraph.iter_edges
    (fun e ->
      Printf.fprintf oc "%s\t%s\t%s\n"
        (Digraph.vertex_name g (Edge.tail e))
        (Digraph.label_name g (Edge.label e))
        (Digraph.vertex_name g (Edge.head e)))
    g

let parse_line g lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else
    match String.split_on_char '\t' line with
    | [ "vertex"; name ] -> ignore (Digraph.vertex g name)
    | [ tail; label; head ] -> ignore (Digraph.add g tail label head)
    | _ -> raise (Malformed (lineno, line))

let read_channel ic =
  let g = Digraph.create () in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       parse_line g !lineno line
     done
   with End_of_file -> ());
  g

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc g)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)

let of_string s =
  let g = Digraph.create () in
  let lines = String.split_on_char '\n' s in
  List.iteri (fun i line -> parse_line g (i + 1) line) lines;
  g

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# mrpa multi-relational graph\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "vertex\t%s\n" (Digraph.vertex_name g v)))
    (Digraph.vertices g);
  Digraph.iter_edges
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%s\t%s\n"
           (Digraph.vertex_name g (Edge.tail e))
           (Digraph.label_name g (Edge.label e))
           (Digraph.vertex_name g (Edge.head e))))
    g;
  Buffer.contents buf
