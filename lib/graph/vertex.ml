(** Vertex identifiers (elements of the vertex set [V]). *)
include Id.Make ()
