(** Descriptive statistics of multi-relational graphs.

    The numbers a practitioner wants before traversing anything: size,
    density, degree distributions (overall and per relation type), how often
    relations are reciprocated, and how relation types co-occur on vertex
    pairs (the co-occurrence off-diagonal is precisely the parallel-edge
    mass that makes the §II label-loss argument bite). *)

type degree_summary = {
  min_degree : int;
  max_degree : int;
  mean : float;
  median : float;
}

val out_degrees : Digraph.t -> degree_summary
val in_degrees : Digraph.t -> degree_summary

val out_degrees_of_label : Digraph.t -> Label.t -> degree_summary
(** Degree summary of the single-relation slice [E_α]. *)

val density : Digraph.t -> float
(** [|E| / (|V|² · |Ω|)] — the filled fraction of the ternary relation's
    domain. [nan] on the empty graph. *)

val reciprocity : Digraph.t -> float
(** Fraction of edges [(i,α,j)] whose mirror [(j,α,i)] (same label) is also
    present. Loops count as reciprocated. [nan] on edgeless graphs. *)

val label_histogram : Digraph.t -> (Label.t * int) list
(** Edges per relation type, descending by count. *)

val parallel_pairs : Digraph.t -> int
(** Number of ordered vertex pairs connected by {e more than one} relation
    type — the pairs on which a binary projection loses information. *)

val label_cooccurrence : Digraph.t -> (Label.t * Label.t * int) list
(** For each unordered label pair [{α, β}] with [α ≤ β], the number of
    ordered vertex pairs carrying both relations. Diagonal entries are the
    per-label pair counts. Only non-zero entries are listed. *)

val degree_histogram : Digraph.t -> (int * int) list
(** [(out-degree, frequency)] pairs, ascending by degree. *)

(** {1 Per-label degree/selectivity profile}

    The statistics the static cost analyzer ([Mrpa_lint.Cost]) consumes:
    for each relation type, how many edges it has, how many distinct tails
    and heads they touch, and the worst-case per-vertex fan-out and fan-in
    of that single relation — plus the all-labels degree maxima. Built in
    one pass over the edge set; the server caches one per frozen
    snapshot. *)

type label_profile = {
  label : Label.t;
  edges : int;  (** [|E_α|]. *)
  distinct_tails : int;  (** distinct [γ⁻] values among [E_α]. *)
  distinct_heads : int;  (** distinct [γ⁺] values among [E_α]. *)
  max_out : int;
      (** largest number of [α]-edges leaving any single vertex. *)
  max_in : int;
      (** largest number of [α]-edges entering any single vertex. *)
  out_histogram : (int * int) list;
      (** [(out-degree within E_α, #vertices)], ascending, nonzero degrees
          only. *)
  in_histogram : (int * int) list;
}

type profile = {
  vertices : int;
  edges : int;
  labels : int;
  max_out_degree : int;  (** max out-degree counting all labels. *)
  max_in_degree : int;
  per_label : label_profile array;  (** indexed by [Label.to_int]. *)
}

val profile : Digraph.t -> profile
(** One [O(|V| + |E|)] pass. *)

val label_profile : profile -> Label.t -> label_profile option
(** Lookup by label; [None] for labels outside the profiled graph. *)

val pp_report : Format.formatter -> Digraph.t -> unit
(** A compact multi-line report (used by [mrpa stats]). *)
