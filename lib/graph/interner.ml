type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let create ?(capacity = 16) () =
  { ids = Hashtbl.create capacity; names = Array.make (max capacity 1) ""; count = 0 }

let grow t =
  let cap = Array.length t.names in
  if t.count >= cap then begin
    let names = Array.make (2 * cap) "" in
    Array.blit t.names 0 names 0 t.count;
    t.names <- names
  end

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
    let id = t.count in
    grow t;
    t.names.(id) <- s;
    t.count <- id + 1;
    Hashtbl.add t.ids s id;
    id

let find t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= t.count then invalid_arg "Interner.name: unknown id";
  t.names.(id)

let name_opt t id = if id < 0 || id >= t.count then None else Some t.names.(id)

let mem t s = Hashtbl.mem t.ids s

let cardinal t = t.count

let to_list t = List.init t.count (fun id -> (id, t.names.(id)))

let copy t =
  { ids = Hashtbl.copy t.ids; names = Array.copy t.names; count = t.count }
