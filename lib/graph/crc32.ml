(* CRC-32/ISO-HDLC (the zlib/Ethernet polynomial), table-driven.

   The public interface speaks [Int32] — the natural type for a 32-bit
   digest — but the hot loop runs on native [int]s: OCaml [Int32] values
   are boxed, and a per-byte loop over boxed arithmetic allocates enough
   to dominate the journal's append cost. A CRC fits comfortably in the
   63-bit native int, so we convert only at the boundary. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Low 32 bits of an Int32, as a non-negative native int. *)
let int_of_crc c = Int32.to_int c land 0xFFFFFFFF

let update crc s =
  let t = Lazy.force table in
  let c = ref (int_of_crc crc lxor 0xFFFFFFFF) in
  for i = 0 to String.length s - 1 do
    c :=
      Array.unsafe_get t ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor 0xFFFFFFFF)

let string s = update 0l s

let hex_digits = "0123456789abcdef"

let to_hex c =
  let v = int_of_crc c in
  String.init 8 (fun i -> hex_digits.[(v lsr ((7 - i) * 4)) land 0xf])

let is_hex_digit = function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false

let of_hex s =
  if String.length s <> 8 || not (String.for_all is_hex_digit s) then None
  else Int32.of_string_opt ("0x" ^ s)
