(** A widening-stable integer-interval domain over saturating natural
    bounds — the arithmetic under the {!Cost} analyzer.

    A {!bound} is a natural number or [Inf]; all operations saturate at a
    threshold far below [max_int], so finite results are exact-or-smaller
    counts, never overflowed ones. A {!t} is a nonempty interval
    [\[lo, hi\]] with finite [lo]; the empty interval is represented by the
    caller as [t option = None]. *)

type bound = Fin of int | Inf

val cap : int
(** The saturation threshold ([max_int / 4]): every finite bound is
    [<= cap], and any operation whose exact result would exceed it
    returns [Inf] instead of wrapping. *)

val fin : int -> bound
(** [Fin (max 0 n)], saturating to [Inf] above {!cap}. *)

val b_add : bound -> bound -> bound
val b_mul : bound -> bound -> bound

val b_pow : bound -> int -> bound
(** [b_pow b k] is [b]{^ k} (saturating); [b_pow b 0 = Fin 1]. *)

val b_min : bound -> bound -> bound
val b_max : bound -> bound -> bound
val b_le : bound -> bound -> bool
val b_gt : bound -> bound -> bool

val b_exceeds_int : bound -> int -> bool
(** Does the bound exceed the plain integer? [Inf] always does. *)

val b_compare : bound -> bound -> int
val b_equal : bound -> bound -> bool
val b_to_string : bound -> string
val pp_bound : Format.formatter -> bound -> unit

type t = { lo : int; hi : bound }

val make : int -> bound -> t
(** Clamps [lo] at 0; raises [Invalid_argument] if [lo > hi]. *)

val point : int -> t
val zero : t

val add : t -> t -> t
(** Minkowski sum: lengths of concatenations. *)

val hull : t -> t -> t
(** Smallest interval containing both — the union's over-approximation. *)

val widen : t -> t -> t
(** [widen previous next]: a still-descending lower bound drops to [0], a
    still-ascending upper bound jumps to [Inf]. One application per side
    stabilises any ascending chain, which is what terminates the star rule
    of the cost analyzer. *)

val mem : int -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
