open Mrpa_core

type severity = Hint | Warning | Error

type t = { code : string; severity : severity; span : Span.t; message : string }

let make ?(span = Span.dummy) ~code ~severity message =
  { code; severity; span; message }

let severity_label = function
  | Hint -> "hint"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Hint -> 0 | Warning -> 1 | Error -> 2

let max_severity = function
  | [] -> None
  | d :: ds ->
    Some
      (List.fold_left
         (fun acc d ->
           if severity_rank d.severity > severity_rank acc then d.severity
           else acc)
         d.severity ds)

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let count severity ds = List.length (List.filter (fun d -> d.severity = severity) ds)

(* Source order, then severity (most severe first), then code: reads like a
   compiler's output when printed. *)
let compare a b =
  let c = Span.compare a.span b.span in
  if c <> 0 then c
  else
    let c = Int.compare (severity_rank b.severity) (severity_rank a.severity) in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c else String.compare a.message b.message

let pp fmt d =
  if Span.is_dummy d.span then
    Format.fprintf fmt "%s[%s]: %s" (severity_label d.severity) d.code d.message
  else
    Format.fprintf fmt "%s[%s] at %a: %s" (severity_label d.severity) d.code
      Span.pp d.span d.message

let excerpt ~source (span : Span.t) =
  if Span.is_dummy span then None
  else begin
    let n = String.length source in
    let start = min (max span.start 0) n in
    let stop = min (max span.stop start) n in
    (* the line containing [start] *)
    let rec back i = if i <= 0 then 0 else if source.[i - 1] = '\n' then i else back (i - 1) in
    let rec fwd i = if i >= n || source.[i] = '\n' then i else fwd (i + 1) in
    let line_start = back start in
    let line_end = fwd start in
    let line = String.sub source line_start (line_end - line_start) in
    let col = start - line_start in
    (* clip the caret run to the line; a caret one past the end marks
       errors at end of input *)
    let width = max 1 (min stop line_end - start) in
    Some
      (Printf.sprintf "  %s\n  %s%s" line (String.make col ' ')
         (String.make width '^'))
  end

let render ~source d =
  let header = Format.asprintf "%a" pp d in
  match excerpt ~source d.span with
  | None -> header
  | Some e -> header ^ "\n" ^ e

let render_all ~source ds =
  String.concat "\n" (List.map (render ~source) ds)

let summary ds =
  let part severity =
    match count severity ds with
    | 0 -> []
    | n -> [ Printf.sprintf "%d %s(s)" n (severity_label severity) ]
  in
  match ds with
  | [] -> "no findings"
  | _ ->
    Printf.sprintf "%d finding(s): %s" (List.length ds)
      (String.concat ", " (part Error @ part Warning @ part Hint))
