open Mrpa_graph
open Mrpa_core

type cls = Static_empty | Eps_only | Inhabited

type info = {
  cls : cls;
  eps : bool;
  tails : Vertex.Set.t;
  heads : Vertex.Set.t;
  labels : Label.Set.t option;
}

let inhabited i = i.cls = Inhabited
let classify ~inh ~eps = if inh then Inhabited else if eps then Eps_only else Static_empty

let empty_info =
  { cls = Static_empty;
    eps = false;
    tails = Vertex.Set.empty;
    heads = Vertex.Set.empty;
    labels = Some Label.Set.empty }

let epsilon_info = { empty_info with cls = Eps_only; eps = true }

let all_labels sg =
  let rec go acc l =
    if l < 0 then acc else go (Label.Set.add (Label.of_int l) acc) (l - 1)
  in
  go Label.Set.empty (Signature.n_labels sg - 1)

let of_labels sg ls =
  { cls = classify ~inh:(Signature.count_of_set sg ls > 0) ~eps:false;
    eps = false;
    tails = Signature.tails_of_set sg ls;
    heads = Signature.heads_of_set sg ls;
    labels = Some ls }

let of_selector sg g sel =
  match (sel : Selector.t) with
  (* label-restricted (or wildcard) patterns read straight off the
     signature, without touching the edge set *)
  | Selector.Pattern { src = None; lbl = None; dst = None } ->
    of_labels sg (all_labels sg)
  | Selector.Pattern { src = None; lbl = Some ls; dst = None } -> of_labels sg ls
  | _ ->
    let tails, heads, n =
      List.fold_left
        (fun (t, h, n) e ->
          ( Vertex.Set.add (Edge.tail e) t,
            Vertex.Set.add (Edge.head e) h,
            n + 1 ))
        (Vertex.Set.empty, Vertex.Set.empty, 0)
        (Selector.enumerate g sel)
    in
    { cls = classify ~inh:(n > 0) ~eps:false;
      eps = false;
      tails;
      heads;
      labels = None }

let feasible sg a b =
  match (a.labels, b.labels) with
  | Some la, Some lb -> Signature.set_can_follow sg la lb
  | _ -> not (Vertex.Set.is_empty (Vertex.Set.inter a.heads b.tails))

let union a b =
  { cls = classify ~inh:(inhabited a || inhabited b) ~eps:(a.eps || b.eps);
    eps = a.eps || b.eps;
    tails = Vertex.Set.union a.tails b.tails;
    heads = Vertex.Set.union a.heads b.heads;
    labels =
      (match (a.labels, b.labels) with
      | Some x, Some y -> Some (Label.Set.union x y)
      | _ -> None) }

(* Shared by join (adjacency required at the seam, [f] from the signature)
   and product ([f = true]: free concatenation always composes). *)
let concat ~f a b =
  let ia = inhabited a and ib = inhabited b in
  let inh = (ia && ib && f) || (ia && b.eps) || (a.eps && ib) in
  let eps = a.eps && b.eps in
  let tails =
    Vertex.Set.union
      (if ia && ((ib && f) || b.eps) then a.tails else Vertex.Set.empty)
      (if a.eps && ib then b.tails else Vertex.Set.empty)
  in
  let heads =
    Vertex.Set.union
      (if ib && ((ia && f) || a.eps) then b.heads else Vertex.Set.empty)
      (if ia && b.eps then a.heads else Vertex.Set.empty)
  in
  { cls = classify ~inh ~eps; eps; tails; heads; labels = None }

let join sg a b = concat ~f:(feasible sg a b) a b
let product a b = concat ~f:true a b

let star b =
  { cls = (if inhabited b then Inhabited else Eps_only);
    eps = true;
    tails = b.tails;
    heads = b.heads;
    labels = None }

let analyze sg g (root : Spanned.t) =
  let infos = ref [] in
  let diags = ref [] in
  let emit span code severity msg =
    diags := Diagnostic.make ~span ~code ~severity msg :: !diags
  in
  let rec go (e : Spanned.t) : info =
    let info =
      match e.Spanned.node with
      | Spanned.Empty -> empty_info
      | Spanned.Epsilon -> epsilon_info
      | Spanned.Sel s ->
        let i = of_selector sg g s in
        if i.cls = Static_empty then
          emit e.span "L002" Diagnostic.Warning
            (Format.asprintf "selector %a matches no edge of the graph"
               (Selector.pp_named g) s);
        i
      | Spanned.Union (a, b) ->
        let ia = go a in
        let ib = go b in
        let arm (x : Spanned.t) i =
          if i.cls = Static_empty then
            match x.Spanned.node with
            | Spanned.Empty ->
              emit x.span "L001" Diagnostic.Hint
                "union arm is the literal empty set"
            | _ ->
              emit x.span "L001" Diagnostic.Warning
                "dead union arm: this alternative can never match"
        in
        arm a ia;
        arm b ib;
        union ia ib
      | Spanned.Join (a, b) ->
        let ia = go a in
        let ib = go b in
        if inhabited ia && inhabited ib && not (feasible sg ia ib) then
          emit e.span "L003" Diagnostic.Warning
            "dead join: no head of the left side is a tail of the right side";
        join sg ia ib
      | Spanned.Product (a, b) ->
        let ia = go a in
        let ib = go b in
        product ia ib
      | Spanned.Star a ->
        let ia = go a in
        (if ia.cls <> Inhabited then
           emit e.span "L004" Diagnostic.Hint
             "trivial star: the body has no nonempty match, so '*' only \
              yields the empty path"
         else if not (feasible sg ia ia) then
           emit e.span "L005" Diagnostic.Hint
             "star cannot iterate: the body never chains with itself, so at \
              most one repetition matches");
        star ia
    in
    infos := (e, info) :: !infos;
    info
  in
  let ri = go root in
  (match ri.cls with
  | Static_empty ->
    emit root.Spanned.span "L000" Diagnostic.Error
      "statically empty query: no path of this graph can ever match"
  | Eps_only ->
    emit root.Spanned.span "L008" Diagnostic.Warning
      "epsilon-only query: only the empty path can match"
  | Inhabited -> ());
  (List.rev !infos, List.rev !diags)
