open Mrpa_core
open Mrpa_automata

(* Forward closure from the initial state (0) over first/follow edges,
   ignoring edge kinds: graph-independent reachability on the position
   automaton. *)
let reachable (a : Glushkov.t) =
  let seen = Array.make (a.n_positions + 1) false in
  let rec visit p =
    if not seen.(p) then begin
      seen.(p) <- true;
      let succs = if p = 0 then a.first else List.map fst a.follow.(p) in
      List.iter visit succs
    end
  in
  visit 0;
  seen

(* Backward closure from the accepting positions. *)
let coaccessible (a : Glushkov.t) =
  let preds = Array.make (a.n_positions + 1) [] in
  List.iter (fun q -> preds.(q) <- 0 :: preds.(q)) a.first;
  Array.iteri
    (fun p succs ->
      if p > 0 then List.iter (fun (q, _) -> preds.(q) <- p :: preds.(q)) succs)
    a.follow;
  let seen = Array.make (a.n_positions + 1) false in
  let rec visit p =
    if not seen.(p) then begin
      seen.(p) <- true;
      List.iter visit preds.(p)
    end
  in
  for p = 1 to a.n_positions do
    if a.last.(p) then visit p
  done;
  seen

let check ?sel_spans g (a : Glushkov.t) =
  let span_of p =
    match sel_spans with
    | Some spans when p - 1 < Array.length spans -> spans.(p - 1)
    | _ -> Span.dummy
  in
  let reach = reachable a in
  let coacc = coaccessible a in
  let diags = ref [] in
  for p = 1 to a.n_positions do
    let describe fmt =
      Format.asprintf fmt p (Selector.pp_named g) a.selector_of.(p)
    in
    if not reach.(p) then
      diags :=
        Diagnostic.make ~span:(span_of p) ~code:"L006"
          ~severity:Diagnostic.Warning
          (describe
             "unreachable selector occurrence #%d (%a): cut off from the \
              start of every match")
        :: !diags
    else if not coacc.(p) then
      diags :=
        Diagnostic.make ~span:(span_of p) ~code:"L007"
          ~severity:Diagnostic.Warning
          (describe
             "dead selector occurrence #%d (%a): no match can be completed \
              from it")
        :: !diags
  done;
  List.rev !diags
