open Mrpa_graph

type t = {
  n_labels : int;
  tails : Vertex.Set.t array; (* indexed by label id *)
  heads : Vertex.Set.t array;
  counts : int array;
  follows : bool array array;
      (* follows.(a).(b): some head of an a-edge is the tail of a b-edge *)
}

let make g =
  let k = Digraph.n_labels g in
  let tails = Array.make k Vertex.Set.empty in
  let heads = Array.make k Vertex.Set.empty in
  let counts = Array.make k 0 in
  Digraph.iter_edges
    (fun e ->
      let l = Label.to_int (Edge.label e) in
      tails.(l) <- Vertex.Set.add (Edge.tail e) tails.(l);
      heads.(l) <- Vertex.Set.add (Edge.head e) heads.(l);
      counts.(l) <- counts.(l) + 1)
    g;
  let follows =
    Array.init k (fun a ->
        Array.init k (fun b ->
            not (Vertex.Set.is_empty (Vertex.Set.inter heads.(a) tails.(b)))))
  in
  { n_labels = k; tails; heads; counts; follows }

let n_labels t = t.n_labels
let tails t l = t.tails.(Label.to_int l)
let heads t l = t.heads.(Label.to_int l)
let count t l = t.counts.(Label.to_int l)
let can_follow t a b = t.follows.(Label.to_int a).(Label.to_int b)

let tails_of_set t ls =
  Label.Set.fold (fun l acc -> Vertex.Set.union (tails t l) acc) ls
    Vertex.Set.empty

let heads_of_set t ls =
  Label.Set.fold (fun l acc -> Vertex.Set.union (heads t l) acc) ls
    Vertex.Set.empty

let count_of_set t ls = Label.Set.fold (fun l acc -> acc + count t l) ls 0

let set_can_follow t la lb =
  Label.Set.exists (fun a -> Label.Set.exists (fun b -> can_follow t a b) lb) la

let pp g fmt t =
  Format.fprintf fmt "@[<v>label signature (%d label(s)):@," t.n_labels;
  for l = 0 to t.n_labels - 1 do
    Format.fprintf fmt "  %-12s %4d edge(s)  %d tail(s)  %d head(s)@,"
      (Digraph.label_name g (Label.of_int l))
      t.counts.(l)
      (Vertex.Set.cardinal t.tails.(l))
      (Vertex.Set.cardinal t.heads.(l))
  done;
  Format.fprintf fmt "  adjacency (row can be followed by column):@,";
  for a = 0 to t.n_labels - 1 do
    Format.fprintf fmt "  %-12s" (Digraph.label_name g (Label.of_int a));
    for b = 0 to t.n_labels - 1 do
      Format.fprintf fmt " %c" (if t.follows.(a).(b) then 'x' else '.')
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
