open Mrpa_core

let analyze ?signature g (e : Spanned.t) =
  let sg = match signature with Some s -> s | None -> Signature.make g in
  let _, emptiness = Emptiness.analyze sg g e in
  let sel_spans =
    Array.of_list (List.map fst (Spanned.sel_occurrences e))
  in
  let automaton =
    Automaton_check.check ~sel_spans g (Mrpa_automata.Glushkov.build (Spanned.strip e))
  in
  List.sort_uniq Diagnostic.compare (emptiness @ automaton)

let analyze_expr ?signature g e = analyze ?signature g (Spanned.of_expr e)
