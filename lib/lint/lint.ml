open Mrpa_core

(* Mirrors [Engine.default_max_length]; the engine layer passes its own
   bound explicitly, this default only serves direct library callers. *)
let default_max_length = 8

let analyze ?signature ?stats ?(max_length = default_max_length) ?fuel
    ?deadline_ms g (e : Spanned.t) =
  let sg = match signature with Some s -> s | None -> Signature.make g in
  let prof = match stats with Some p -> p | None -> Mrpa_graph.Stat.profile g in
  let _, emptiness = Emptiness.analyze sg g e in
  let sel_spans =
    Array.of_list (List.map fst (Spanned.sel_occurrences e))
  in
  let automaton =
    Automaton_check.check ~sel_spans g (Mrpa_automata.Glushkov.build (Spanned.strip e))
  in
  let cost = Cost.analyze ~stats:prof g ~max_length e in
  let costs = Cost.diagnostics cost @ Cost.budget_check ?fuel ?deadline_ms cost in
  List.sort_uniq Diagnostic.compare (emptiness @ automaton @ costs)

let analyze_expr ?signature ?stats ?max_length ?fuel ?deadline_ms g e =
  analyze ?signature ?stats ?max_length ?fuel ?deadline_ms g (Spanned.of_expr e)
