(** Static cost and cardinality analysis of regular path queries.

    An abstract interpretation over the spanned AST computing, per
    subexpression, (a) the interval of path lengths it can produce, (b) an
    upper bound on the number of distinct paths it can denote within the
    evaluation length bound, derived from per-label degree statistics
    ({!Mrpa_graph.Stat.profile}), and (c) a whole-query work estimate in
    the same units [Budget.fuel] charges, derived from a walk-counting
    dynamic program over the Glushkov position automaton.

    The two headline numbers are {e sound upper bounds}, property-tested
    against every evaluation backend: the evaluated path-set is never
    larger than {!t.predicted_paths}, and the fuel actually spent never
    exceeds {!t.predicted_cost} (see [test/test_cost.ml]). That soundness
    is what lets the planner pick strategies and the server reject
    infeasible queries before occupying a worker.

    Diagnostics derived from the analysis:
    - [L010] (warning): a star over a dense relation whose bound crosses
      the blowup threshold — the combinatorial-explosion idiom.
    - [L011] (warning): a join/product multiplying two nontrivial
      cardinalities past the threshold.
    - [L012] (warning, {!budget_check}): the predicted cost exceeds the
      supplied fuel or deadline — the query is budget-infeasible as posed.
    - [L013] (hint): a subexpression whose shortest match is longer than
      the length bound — statically zero selectivity at this bound. *)

open Mrpa_graph
open Mrpa_core

type bound = Interval.bound = Fin of int | Inf

type info = {
  len : Interval.t option;
      (** lengths of matching paths; [None] when no path can match. The
          interval is structural — it is {e not} clipped to the length
          bound, so a star shows [\[0,inf\]]. *)
  card : bound;
      (** upper bound on distinct matching paths within the length
          bound. *)
  out_fan : bound;
      (** upper bound on matching paths starting at any one vertex. *)
  in_fan : bound;  (** dito, ending at any one vertex. *)
}

type row = {
  term : Spanned.t;
  info : info;
  children : info list;  (** the direct subterms' results, in order. *)
}

type t = {
  max_length : int;
  rows : row list;  (** one per subexpression, preorder (root first). *)
  root : info;
  positions : int;  (** Glushkov positions of the whole expression. *)
  peak_frontier : bound;
      (** largest per-level walk-count row of the automaton DP — the
          width the planner compares against its batching threshold. *)
  predicted_paths : bound;
      (** sound upper bound on the result cardinality: min of the
          structural bound and the automaton's accepting-walk count. *)
  predicted_cost : bound;
      (** sound upper bound on [Budget.fuel_used] for evaluating this
          query with {e any} strategy under the same length bound. *)
}

val analyze :
  stats:Stat.profile -> Digraph.t -> max_length:int -> Spanned.t -> t
(** Run the analysis. [stats] is the graph's degree profile — pass a
    cached one ({!Mrpa_graph.Stat.profile} is [O(|V|+|E|)]) when analysing
    many queries over the same graph. Raises [Invalid_argument] on a
    negative [max_length]. *)

val analyze_expr :
  stats:Stat.profile -> Digraph.t -> max_length:int -> Expr.t -> t
(** {!analyze} on a span-less expression. *)

val default_blowup_threshold : int
(** 1,000,000 — the cardinality at which L010/L011 start firing. *)

val diagnostics : ?blowup_threshold:int -> t -> Diagnostic.t list
(** The L010/L011/L013 findings of an analysis. Blowup findings blame the
    innermost node whose bound first crosses the threshold, not every
    ancestor the bound propagates through. *)

val budget_check : ?fuel:int -> ?deadline_ms:float -> t -> Diagnostic.t list
(** The L012 findings: does the predicted cost fit the supplied fuel
    and/or deadline? The deadline is converted at {!fuel_units_per_ms} —
    an optimistic throughput, so the warning only fires on queries no
    plausible machine finishes in time. *)

val fuel_units_per_ms : int

val pp_summary : Format.formatter -> t -> unit
(** One line: predicted paths, cost, frontier, positions. *)

val pp_table :
  (Format.formatter -> Expr.t -> unit) -> Format.formatter -> t -> unit
(** The per-subexpression cost table ([len] interval, path bound,
    expression), rendered with the given expression printer —
    [Expr.pp_named g] for resolved names. *)
