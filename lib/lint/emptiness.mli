(** Bottom-up abstract interpretation of expressions over the
    {!Signature} abstraction.

    Every subexpression is assigned an {!info}: a three-way classification
    plus over-approximations of the endpoint sets of its nonempty matches.
    The invariants (for expression [r] over graph [G], with [D(r)] its
    denotation as in the paper's §IV):

    - [cls = Static_empty] ⟹ [D(r) = ∅] — {e sound}: the analyzer never
      calls a subexpression empty that could match anything;
    - [cls = Eps_only] ⟹ [D(r) ⊆ {ε}] and [ε ∈ D(r)];
    - every nonempty path of [D(r)] starts at a vertex in [tails] and ends
      at one in [heads];
    - [eps] iff [ε ∈ D(r)] (this direction is exact, it is just
      nullability).

    [Inhabited] is an over-approximation: the expression {e may} match, the
    abstraction cannot tell. The converse directions do not hold and the
    analyzer makes no completeness claim. *)

open Mrpa_graph
open Mrpa_core

type cls =
  | Static_empty  (** no path at all can match. *)
  | Eps_only  (** exactly the empty path matches. *)
  | Inhabited  (** some nonempty path may match. *)

type info = {
  cls : cls;
  eps : bool;  (** is [ε] in the denotation? (exact: nullability) *)
  tails : Vertex.Set.t;
      (** over-approximation of start vertices of nonempty matches. *)
  heads : Vertex.Set.t;
      (** over-approximation of end vertices of nonempty matches. *)
  labels : Label.Set.t option;
      (** [Some ls] when [tails]/[heads] are exactly the signature sets of
          [ls] — enables the precomputed label-adjacency fast path. *)
}

val inhabited : info -> bool

val feasible : Signature.t -> info -> info -> bool
(** Can a nonempty match of the first operand be extended by one of the
    second with the adjacency the join requires? Uses the precomputed
    label-adjacency matrix when both sides are label-backed, vertex-set
    intersection otherwise. *)

val analyze :
  Signature.t ->
  Digraph.t ->
  Spanned.t ->
  (Spanned.t * info) list * Diagnostic.t list
(** Classify every subexpression (returned in postorder, root last) and
    report:

    - [L002] a selector leaf matching no edge,
    - [L001] a statically-empty union arm (hint when it is the literal
      [empty]),
    - [L003] a join whose two inhabited sides can never meet,
    - [L004] a star whose body has no nonempty match,
    - [L005] a star whose body cannot chain with itself,
    - [L000]/[L008] a statically-empty / epsilon-only whole query. *)
