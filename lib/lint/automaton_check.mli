(** Structural diagnostics from the Glushkov position automaton.

    A second, graph-independent source of dead-code findings: a selector
    occurrence whose position is unreachable from the initial state ([L006])
    or from which no accepting position is reachable ([L007]) can be deleted
    from the expression without changing its denotation on {e any} graph.
    Such positions arise from [empty] subexpressions — e.g. the occurrence
    of [a] in [empty . \[_,a,_\]] is unreachable, and in
    [\[_,a,_\] . empty] it is dead. *)

open Mrpa_graph
open Mrpa_core
open Mrpa_automata

val reachable : Glushkov.t -> bool array
(** Indexed by position ([0] = initial state, always reachable). *)

val coaccessible : Glushkov.t -> bool array
(** Can an accepting position be reached? (Entry [0] reflects whether any
    accepting position is reachable at all; for a nullable expression the
    initial state itself accepts, which this array does {e not} count.) *)

val check : ?sel_spans:Span.t array -> Digraph.t -> Glushkov.t -> Diagnostic.t list
(** [L006]/[L007] findings, one per affected position, in position order.
    [sel_spans.(i)] is the source span of position [i + 1] — exactly what
    {!Mrpa_core.Spanned.sel_occurrences} yields, since Glushkov numbers
    positions in the same left-to-right leaf order. The graph is only used
    to render selector names. *)
