(** Label-signature abstraction of a graph.

    One pass over the edge set precomputes, per relation type [α ∈ Ω], the
    tail set [γ⁻(E_α)], the head set [γ⁺(E_α)] and [|E_α|], plus the label
    adjacency matrix: [can_follow α β] iff some head of an [α]-edge is the
    tail of a [β]-edge — i.e. iff the concatenative join of an [α]-step
    with a [β]-step can ever be nonempty on this graph. The emptiness
    analyzer ({!Emptiness}) interprets expressions over this abstraction. *)

open Mrpa_graph

type t

val make : Digraph.t -> t
(** One [O(|E|)] pass plus [O(|Ω|²)] set intersections. *)

val n_labels : t -> int
val tails : t -> Label.t -> Vertex.Set.t
val heads : t -> Label.t -> Vertex.Set.t
val count : t -> Label.t -> int

val can_follow : t -> Label.t -> Label.t -> bool
(** Precomputed: [heads a ∩ tails b ≠ ∅]. *)

(** {1 Lifted to label sets} *)

val tails_of_set : t -> Label.Set.t -> Vertex.Set.t
val heads_of_set : t -> Label.Set.t -> Vertex.Set.t
val count_of_set : t -> Label.Set.t -> int

val set_can_follow : t -> Label.Set.t -> Label.Set.t -> bool
(** Some pair of the two sets can join. *)

val pp : Digraph.t -> Format.formatter -> t -> unit
(** Per-label table plus the adjacency matrix. *)
