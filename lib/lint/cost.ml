open Mrpa_graph
open Mrpa_core
module I = Interval

type bound = Interval.bound = Fin of int | Inf

type info = {
  len : I.t option;
  card : bound;
  out_fan : bound;
  in_fan : bound;
}

type row = { term : Spanned.t; info : info; children : info list }

type t = {
  max_length : int;
  rows : row list;
  root : info;
  positions : int;
  peak_frontier : bound;
  predicted_paths : bound;
  predicted_cost : bound;
}

(* --- Selector statistics ------------------------------------------------ *)

(* Over-approximate the set of labels a selector can match; [None] means
   "any label" (used only to fall back to the global degree maxima). *)
let rec labels_of_selector : Selector.t -> Label.Set.t option = function
  | Selector.Pattern { lbl; _ } -> lbl
  | Selector.Explicit es ->
    Some
      (Edge.Set.fold
         (fun e acc -> Label.Set.add (Edge.label e) acc)
         es Label.Set.empty)
  | Selector.Union (a, b) -> (
    match (labels_of_selector a, labels_of_selector b) with
    | Some x, Some y -> Some (Label.Set.union x y)
    | _ -> None)
  | Selector.Inter (a, b) -> (
    match labels_of_selector a with
    | Some x -> Some x
    | None -> labels_of_selector b)
  | Selector.Diff (a, _) -> labels_of_selector a

let sum_over_labels per (prof : Stat.profile) ls =
  Label.Set.fold
    (fun l acc ->
      I.b_add acc
        (match Stat.label_profile prof l with
        | Some lp -> I.fin (per lp)
        | None -> Fin 0))
    ls (Fin 0)

(* Fan-out of a selector: an upper bound on how many of its edges can leave
   one single vertex. Three sound bounds, take the tightest: the total
   match count ([size_hint] never underestimates), the all-labels degree
   maximum, and the sum of per-label degree maxima over the labels the
   selector can match. *)
let sel_card g s = I.fin (Selector.size_hint g s)

let sel_out_fan (prof : Stat.profile) g s =
  let by_label =
    match labels_of_selector s with
    | None -> Inf
    | Some ls -> sum_over_labels (fun lp -> lp.Stat.max_out) prof ls
  in
  I.b_min (sel_card g s) (I.b_min (I.fin prof.Stat.max_out_degree) by_label)

let sel_in_fan (prof : Stat.profile) g s =
  let by_label =
    match labels_of_selector s with
    | None -> Inf
    | Some ls -> sum_over_labels (fun lp -> lp.Stat.max_in) prof ls
  in
  I.b_min (sel_card g s) (I.b_min (I.fin prof.Stat.max_in_degree) by_label)

(* --- Structural abstract interpretation -------------------------------- *)

(* Σ_{j=0}^{k} b^j, saturating (early exit once the running power is Inf). *)
let geometric b k =
  let acc = ref (Fin 0) and p = ref (Fin 1) in
  (try
     for _ = 0 to k do
       acc := I.b_add !acc !p;
       if !acc = Inf then raise Exit;
       p := I.b_mul !p b
     done
   with Exit -> acc := Inf);
  !acc

let zero_info len = { len; card = Fin 0; out_fan = Fin 0; in_fan = Fin 0 }

(* [card] counts paths realisable within the length bound, so a node whose
   shortest match is already longer than the bound contributes nothing —
   but its [len] is kept as computed so L013 can point at it. *)
let clip ~max_length i =
  match i.len with
  | Some iv when iv.I.lo > max_length ->
    { i with card = Fin 0; out_fan = Fin 0; in_fan = Fin 0 }
  | _ -> i

let analyze ~stats g ~max_length (sp : Spanned.t) =
  if max_length < 0 then invalid_arg "Cost.analyze: negative max_length";
  let prof = stats in
  let rec go (sp : Spanned.t) : info * row list =
    let mk info children child_rows =
      (info, { term = sp; info; children } :: List.concat child_rows)
    in
    match sp.Spanned.node with
    | Spanned.Empty -> mk (zero_info None) [] []
    | Spanned.Epsilon ->
      mk
        { len = Some I.zero; card = Fin 1; out_fan = Fin 1; in_fan = Fin 1 }
        [] []
    | Spanned.Sel s ->
      let card = sel_card g s in
      mk
        (clip ~max_length
           {
             len = Some (I.point 1);
             card;
             out_fan = I.b_min card (sel_out_fan prof g s);
             in_fan = I.b_min card (sel_in_fan prof g s);
           })
        [] []
    | Spanned.Union (a, b) ->
      let ia, ra = go a and ib, rb = go b in
      let len =
        match (ia.len, ib.len) with
        | None, l | l, None -> l
        | Some x, Some y -> Some (I.hull x y)
      in
      mk
        (clip ~max_length
           {
             len;
             card = I.b_add ia.card ib.card;
             out_fan = I.b_add ia.out_fan ib.out_fan;
             in_fan = I.b_add ia.in_fan ib.in_fan;
           })
        [ ia; ib ] [ ra; rb ]
    | Spanned.Join (a, b) ->
      let ia, ra = go a and ib, rb = go b in
      let len =
        match (ia.len, ib.len) with
        | None, _ | _, None -> None
        | Some x, Some y -> Some (I.add x y)
      in
      (* adjacency at the seam: each left path extends by at most the
         right side's per-vertex fan (and symmetrically). The empty path is
         the exception — it has no seam vertex, and [eps . B = B] — so when
         a side's length interval admits 0 its (single) empty path may
         contribute the whole other side, not a per-vertex slice. *)
      let may_eps i =
        match i.len with Some l -> I.mem 0 l | None -> false
      in
      let eps_a b = if may_eps ia then b else I.Fin 0 in
      let eps_b b = if may_eps ib then b else I.Fin 0 in
      let card =
        I.b_min
          (I.b_add (eps_a ib.card) (I.b_mul ia.card ib.out_fan))
          (I.b_min
             (I.b_add (eps_b ia.card) (I.b_mul ib.card ia.in_fan))
             (I.b_mul ia.card ib.card))
      in
      let out_fan =
        I.b_add
          (I.b_add (eps_a ib.out_fan) (eps_b ia.out_fan))
          (I.b_mul ia.out_fan ib.out_fan)
      in
      let in_fan =
        I.b_add
          (I.b_add (eps_a ib.in_fan) (eps_b ia.in_fan))
          (I.b_mul ia.in_fan ib.in_fan)
      in
      mk
        (clip ~max_length
           {
             len;
             card;
             out_fan = I.b_min card out_fan;
             in_fan = I.b_min card in_fan;
           })
        [ ia; ib ] [ ra; rb ]
    | Spanned.Product (a, b) ->
      let ia, ra = go a and ib, rb = go b in
      let len =
        match (ia.len, ib.len) with
        | None, _ | _, None -> None
        | Some x, Some y -> Some (I.add x y)
      in
      let card = I.b_mul ia.card ib.card in
      (* the empty-path caveat again: [eps x B = B], so an [eps]-admitting
         side lets the other side's fan through unscaled. *)
      let may_eps i =
        match i.len with Some l -> I.mem 0 l | None -> false
      in
      let eps_a b = if may_eps ia then b else I.Fin 0 in
      let eps_b b = if may_eps ib then b else I.Fin 0 in
      let out_fan =
        I.b_add
          (I.b_add (eps_a ib.out_fan) (eps_b ia.out_fan))
          (I.b_mul ia.out_fan ib.card)
      in
      let in_fan =
        I.b_add
          (I.b_add (eps_a ib.in_fan) (eps_b ia.in_fan))
          (I.b_mul ia.card ib.in_fan)
      in
      mk
        (clip ~max_length
           {
             len;
             card;
             out_fan = I.b_min card out_fan;
             in_fan = I.b_min card in_fan;
           })
        [ ia; ib ] [ ra; rb ]
    | Spanned.Star a ->
      let ia, ra = go a in
      let eps_only =
        match ia.len with
        | None -> true
        | Some iv -> iv.I.hi = Fin 0
      in
      if eps_only || ia.card = Fin 0 then
        mk
          { len = Some I.zero; card = Fin 1; out_fan = Fin 1; in_fan = Fin 1 }
          [ ia ] [ ra ]
      else begin
        let body_len = Option.get ia.len in
        (* the nonempty part of the body contributes at least one edge per
           iteration, so within the bound at most [k] iterations fit. *)
        let step = max 1 body_len.I.lo in
        let k = max_length / step in
        (* widening-stable length: one widening of [0,0] against
           [0,0] + body stabilises the iteration at [0, Inf]. *)
        let len = I.widen I.zero (I.add I.zero body_len) in
        mk
          (clip ~max_length
             {
               len = Some len;
               card = geometric ia.card k;
               out_fan = geometric ia.out_fan k;
               in_fan = geometric ia.in_fan k;
             })
          [ ia ] [ ra ]
      end
  in
  let root, rows = go sp in
  (* --- Glushkov walk-count DP ------------------------------------------ *)
  (* W(q, k): upper bound on the number of edge sequences of length [k]
     that match some prefix of the expression and whose last edge was
     consumed at position [q]. A [Joint] boundary extends a sequence by at
     most the next position's per-vertex fan; a [Free] boundary by its
     whole match count. Every evaluation backend does work proportional to
     these walk counts times the positions' follow widths (see the
     soundness tests), so the summed DP plus a per-level additive term for
     bookkeeping polls is a sound fuel ceiling. *)
  let module G = Mrpa_automata.Glushkov in
  let a = G.build (Spanned.strip sp) in
  let n = a.G.n_positions in
  let card = Array.make (n + 1) (Fin 0) in
  let fan = Array.make (n + 1) (Fin 0) in
  for q = 1 to n do
    card.(q) <- sel_card g a.G.selector_of.(q);
    fan.(q) <- sel_out_fan prof g a.G.selector_of.(q)
  done;
  let total = ref (I.fin (1 + List.length a.G.first)) in
  let accept = ref (if a.G.nullable then Fin 1 else Fin 0) in
  let peak = ref (Fin 1) in
  let w = Array.make (n + 1) (Fin 0) in
  List.iter (fun q -> w.(q) <- I.b_add w.(q) card.(q)) a.G.first;
  for k = 1 to max_length do
    let row = ref (Fin 0) in
    for q = 1 to n do
      row := I.b_add !row w.(q);
      if a.G.last.(q) then accept := I.b_add !accept w.(q);
      total :=
        I.b_add !total
          (I.b_mul w.(q) (I.fin (1 + List.length a.G.follow.(q))))
    done;
    peak := I.b_max !peak !row;
    if k < max_length then begin
      let next = Array.make (n + 1) (Fin 0) in
      for q = 1 to n do
        if not (I.b_equal w.(q) (Fin 0)) then
          List.iter
            (fun (q', kind) ->
              let step =
                match kind with G.Joint -> fan.(q') | G.Free -> card.(q')
              in
              next.(q') <- I.b_add next.(q') (I.b_mul w.(q) step))
            a.G.follow.(q)
      done;
      Array.blit next 0 w 0 (n + 1)
    end
  done;
  (* Additive slop: per evaluation level, every backend may spend a
     constant-ish floor per automaton transition pair (the stack machine's
     max(1, ·) charge), per expression node (the reference evaluator's
     iterative deepening), plus level bookkeeping. *)
  let n_nodes = List.length (Spanned.subterms sp) in
  let slop =
    I.b_mul (I.fin (max_length + 1)) (I.fin ((n * n) + n_nodes + 2))
  in
  {
    max_length;
    rows;
    root;
    positions = n;
    peak_frontier = !peak;
    predicted_paths = I.b_min root.card !accept;
    predicted_cost = I.b_add !total slop;
  }

let analyze_expr ~stats g ~max_length e =
  analyze ~stats g ~max_length (Spanned.of_expr e)

(* --- Diagnostics -------------------------------------------------------- *)

let default_blowup_threshold = 1_000_000

let window_empty ~max_length i =
  match i.len with Some iv -> iv.I.lo > max_length | None -> false

let diagnostics ?(blowup_threshold = default_blowup_threshold) t =
  let big b = I.b_exceeds_int b (blowup_threshold - 1) in
  let at_least_2 b = I.b_exceeds_int b 1 in
  let warn span code msg = Diagnostic.make ~span ~code ~severity:Diagnostic.Warning msg in
  let hint span code msg = Diagnostic.make ~span ~code ~severity:Diagnostic.Hint msg in
  List.concat_map
    (fun r ->
      let span = r.term.Spanned.span in
      let blowup =
        (* blame the innermost node where the bound first crosses the
           threshold, not every ancestor it propagates through. *)
        big r.info.card && not (List.exists (fun c -> big c.card) r.children)
      in
      let structural =
        match (r.term.Spanned.node, r.children) with
        | Spanned.Star _, [ body ] when blowup && at_least_2 body.out_fan ->
          [
            warn span "L010"
              (Printf.sprintf
                 "unbounded star over a dense relation: up to %s paths \
                  within length %d (body fan-out %s)"
                 (I.b_to_string r.info.card) t.max_length
                 (I.b_to_string body.out_fan));
          ]
        | (Spanned.Join _ | Spanned.Product _), [ a; b ]
          when blowup && at_least_2 a.card && at_least_2 b.card ->
          let what =
            match r.term.Spanned.node with
            | Spanned.Product _ -> "product"
            | _ -> "join"
          in
          [
            warn span "L011"
              (Printf.sprintf
                 "%s may multiply cardinalities: %s x %s paths meet here \
                  (bound %s)"
                 what (I.b_to_string a.card) (I.b_to_string b.card)
                 (I.b_to_string r.info.card));
          ]
        | _ -> []
      in
      let window =
        if
          window_empty ~max_length:t.max_length r.info
          && not
               (List.exists (fun c -> window_empty ~max_length:t.max_length c) r.children)
        then
          let lo =
            match r.info.len with Some iv -> iv.I.lo | None -> 0
          in
          [
            hint span "L013"
              (Printf.sprintf
                 "zero selectivity within the length bound: the shortest \
                  match here has %d edges but max length is %d"
                 lo t.max_length);
          ]
        else []
      in
      structural @ window)
    t.rows

(* Conversion rate for turning a wall-clock deadline into work units: an
   optimistic checkpoint throughput, so the warning only fires on queries
   no plausible machine finishes in time. Calibrated against EXP-T12's
   guardrail overhead measurements; deliberately rough. *)
let fuel_units_per_ms = 50_000

let budget_check ?fuel ?deadline_ms t =
  let span =
    match t.rows with r :: _ -> r.term.Spanned.span | [] -> Span.dummy
  in
  let warn msg =
    [ Diagnostic.make ~span ~code:"L012" ~severity:Diagnostic.Warning msg ]
  in
  let fuel_diag =
    match fuel with
    | Some f when I.b_exceeds_int t.predicted_cost f ->
      warn
        (Printf.sprintf
           "budget-infeasible: predicted cost %s work units exceeds the \
            supplied fuel %d"
           (I.b_to_string t.predicted_cost) f)
    | _ -> []
  in
  let deadline_diag =
    match deadline_ms with
    | Some ms ->
      let allowed =
        I.b_mul (I.fin (int_of_float (ceil ms))) (Fin fuel_units_per_ms)
      in
      if I.b_gt t.predicted_cost allowed then
        warn
          (Printf.sprintf
             "budget-infeasible: predicted cost %s work units exceeds what \
              a %g ms deadline can cover (~%s units)"
             (I.b_to_string t.predicted_cost) ms (I.b_to_string allowed))
      else []
    | None -> []
  in
  fuel_diag @ deadline_diag

(* --- Rendering ---------------------------------------------------------- *)

let pp_summary fmt t =
  Format.fprintf fmt "paths <= %s, cost <= %s work units (frontier <= %s, %d position(s))"
    (I.b_to_string t.predicted_paths)
    (I.b_to_string t.predicted_cost)
    (I.b_to_string t.peak_frontier)
    t.positions

let pp_table pp_expr fmt t =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "%-9s %-10s expression" "len" "paths";
  List.iter
    (fun r ->
      Format.fprintf fmt "@,%-9s %-10s %a"
        (match r.info.len with None -> "-" | Some iv -> I.to_string iv)
        ("<=" ^ I.b_to_string r.info.card)
        pp_expr
        (Spanned.strip r.term))
    t.rows;
  Format.fprintf fmt "@]"
