(* Saturating natural-number bounds and integer intervals.

   Everything the cost analyzer counts — path lengths, cardinalities, fuel
   units — is a natural number that may genuinely be unbounded (a star over
   a cyclic graph) or so large that machine arithmetic would overflow. Both
   cases collapse to [Inf]: arithmetic saturates well below [max_int], so a
   [Fin n] that comes out of this module is an honest value, never a
   wrapped-around one. *)

type bound = Fin of int | Inf

(* Saturation threshold: far above any meaningful count, far below
   [max_int], so a single post-saturation addition cannot overflow. *)
let cap = max_int / 4

let fin n = if n > cap then Inf else Fin (max 0 n)

let b_add a b =
  match (a, b) with
  | Inf, _ | _, Inf -> Inf
  | Fin x, Fin y -> fin (x + y)

let b_mul a b =
  match (a, b) with
  | Fin 0, _ | _, Fin 0 -> Fin 0
  | Inf, _ | _, Inf -> Inf
  | Fin x, Fin y -> if x > cap / y then Inf else fin (x * y)

(* b^k by repeated saturating multiplication. b_pow b 0 = 1. *)
let b_pow b k =
  let rec go acc i = if i >= k then acc else go (b_mul acc b) (i + 1) in
  go (Fin 1) 0

let b_min a b =
  match (a, b) with
  | Inf, x | x, Inf -> x
  | Fin x, Fin y -> Fin (min x y)

let b_max a b =
  match (a, b) with
  | Inf, _ | _, Inf -> Inf
  | Fin x, Fin y -> Fin (max x y)

let b_le a b =
  match (a, b) with
  | _, Inf -> true
  | Inf, Fin _ -> false
  | Fin x, Fin y -> x <= y

let b_gt a b = not (b_le a b)

let b_exceeds_int b n = match b with Inf -> true | Fin x -> x > n

let b_compare a b =
  match (a, b) with
  | Inf, Inf -> 0
  | Inf, Fin _ -> 1
  | Fin _, Inf -> -1
  | Fin x, Fin y -> Int.compare x y

let b_equal a b = b_compare a b = 0

let b_to_string = function Fin n -> string_of_int n | Inf -> "inf"

let pp_bound fmt b = Format.pp_print_string fmt (b_to_string b)

(* --- Intervals ---------------------------------------------------------- *)

(* [lo] is always finite (a shortest length exists whenever any length
   does); [hi] may be [Inf]. Invariant: [Fin lo <= hi]. The empty set of
   lengths is represented by the {e caller} as [t option = None], keeping
   every [t] nonempty and the invariant trivial. *)
type t = { lo : int; hi : bound }

let make lo hi =
  let lo = max 0 lo in
  if b_gt (Fin lo) hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point n = make n (fin n)
let zero = point 0

let add a b = { lo = a.lo + b.lo; hi = b_add a.hi b.hi }

let hull a b = { lo = min a.lo b.lo; hi = b_max a.hi b.hi }

(* Classic interval widening: a lower bound still sliding down drops to 0,
   an upper bound still climbing jumps to [Inf]. Guarantees stabilisation
   of any ascending iteration in one step per side — this is what makes the
   star rule of the cost analyzer terminate. *)
let widen a b =
  {
    lo = (if b.lo < a.lo then 0 else a.lo);
    hi = (if b_gt b.hi a.hi then Inf else a.hi);
  }

let mem n t = n >= t.lo && b_le (Fin n) t.hi

let equal a b = a.lo = b.lo && b_equal a.hi b.hi

let pp fmt t = Format.fprintf fmt "[%d,%s]" t.lo (b_to_string t.hi)

let to_string t = Format.asprintf "%a" pp t
