(** The static analyzer: every diagnostic source behind one call.

    Runs after parsing and before planning. Combines the graph-aware
    {!Emptiness} abstract interpretation (dead union arms, never-adjacent
    joins, stars that cannot iterate, selectors matching no edge) with the
    graph-independent {!Automaton_check} over the Glushkov position
    automaton (unreachable and non-coaccessible selector occurrences) and
    the {!Cost} cardinality/cost analysis (combinatorial blowups,
    budget-infeasible queries, zero selectivity under the length bound).

    See {!Diagnostic} for the full code table. *)

open Mrpa_graph
open Mrpa_core

val default_max_length : int
(** 8 — mirrors the engine's default star-unrolling bound. *)

val analyze :
  ?signature:Signature.t ->
  ?stats:Stat.profile ->
  ?max_length:int ->
  ?fuel:int ->
  ?deadline_ms:float ->
  Digraph.t ->
  Spanned.t ->
  Diagnostic.t list
(** All findings, deduplicated and sorted by {!Diagnostic.compare} (source
    order, most severe first). Pass [?signature] and [?stats] to reuse a
    precomputed {!Signature.t} / {!Mrpa_graph.Stat.profile} across many
    queries over the same graph (the server caches both on its snapshot).
    [max_length] is the star-unrolling bound the cost analysis assumes;
    [fuel] / [deadline_ms] enable the L012 budget-feasibility check. *)

val analyze_expr :
  ?signature:Signature.t ->
  ?stats:Stat.profile ->
  ?max_length:int ->
  ?fuel:int ->
  ?deadline_ms:float ->
  Digraph.t ->
  Mrpa_core.Expr.t ->
  Diagnostic.t list
(** {!analyze} on a span-less expression (all findings carry
    {!Mrpa_core.Span.dummy}); for programmatically built queries. *)
