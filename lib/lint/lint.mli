(** The static analyzer: every diagnostic source behind one call.

    Runs after parsing and before planning. Combines the graph-aware
    {!Emptiness} abstract interpretation (dead union arms, never-adjacent
    joins, stars that cannot iterate, selectors matching no edge) with the
    graph-independent {!Automaton_check} over the Glushkov position
    automaton (unreachable and non-coaccessible selector occurrences).

    See {!Diagnostic} for the full code table. *)

open Mrpa_graph
open Mrpa_core

val analyze :
  ?signature:Signature.t -> Digraph.t -> Spanned.t -> Diagnostic.t list
(** All findings, deduplicated and sorted by {!Diagnostic.compare} (source
    order, most severe first). Pass [?signature] to reuse a precomputed
    {!Signature.t} across many queries over the same graph. *)

val analyze_expr :
  ?signature:Signature.t -> Digraph.t -> Mrpa_core.Expr.t -> Diagnostic.t list
(** {!analyze} on a span-less expression (all findings carry
    {!Mrpa_core.Span.dummy}); for programmatically built queries. *)
