(** Span-carrying diagnostics with stable codes.

    Every finding of the static analyzer — and every parse error rendered
    by the CLI — is a [t]: a stable code (["L003"]), a severity, a message,
    and the byte {!Mrpa_core.Span.t} of the source text it points at
    ({!Mrpa_core.Span.dummy} when the finding has no source location, e.g.
    optimiser notes on programmatically built expressions).

    The diagnostic codes emitted by {!Lint.analyze}:

    - [L000] [Error] empty-query: the whole query is statically empty
    - [L001] dead-union-arm: a [|] arm can never match
    - [L002] empty-selector: a selector matches no edge of the graph
    - [L003] dead-join: the sides of a [.] can never meet
    - [L004] trivial-star: a star's body has no nonempty match
    - [L005] star-no-iterate: a star's body cannot chain with itself
    - [L006] unreachable-position: automaton position unreachable
    - [L007] dead-position: no match can be completed from a position
    - [L008] epsilon-query: only the empty path can match
    - [L009] rewrite-empty: the optimiser proved a subexpression empty *)

open Mrpa_core

type severity = Hint | Warning | Error

type t = { code : string; severity : severity; span : Span.t; message : string }

val make : ?span:Span.t -> code:string -> severity:severity -> string -> t
val severity_label : severity -> string
val severity_rank : severity -> int

val max_severity : t list -> severity option
val has_errors : t list -> bool
val count : severity -> t list -> int

val compare : t -> t -> int
(** Source order, then most-severe-first, then code. *)

val pp : Format.formatter -> t -> unit
(** One-line header, e.g. [warning\[L003\] at 0-17: dead join: …]. *)

val excerpt : source:string -> Span.t -> string option
(** The source line containing the span's start, plus a caret line
    underlining the span (clipped to the line). [None] for a dummy span. *)

val render : source:string -> t -> string
(** {!pp} header plus {!excerpt}, newline-separated. *)

val render_all : source:string -> t list -> string

val summary : t list -> string
(** ["2 finding(s): 1 error(s), 1 warning(s)"], or ["no findings"]. *)
