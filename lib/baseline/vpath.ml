open Mrpa_graph

type t = Vertex.t array

let empty = [||]
let is_empty p = Array.length p = 0
let of_vertex v = [| v |]
let of_edge i j = [| i; j |]
let of_vertices l = Array.of_list l
let length p = max 0 (Array.length p - 1)
let first p = if is_empty p then None else Some p.(0)
let last p = if is_empty p then None else Some p.(Array.length p - 1)
let vertices p = Array.to_list p

let joint a b =
  match (last a, first b) with
  | None, _ | _, None -> true
  | Some x, Some y -> Vertex.equal x y

let concat a b =
  if is_empty a then b
  else if is_empty b then a
  else if not (joint a b) then invalid_arg "Vpath.concat: disjoint strings"
  else Array.append a (Array.sub b 1 (Array.length b - 1))

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec cmp i =
      if i >= Array.length a then 0
      else
        let c = Vertex.compare a.(i) b.(i) in
        if c <> 0 then c else cmp (i + 1)
    in
    cmp 0

let equal a b = compare a b = 0

let pp fmt p =
  if is_empty p then Format.pp_print_string fmt "\xCE\xB5"
  else begin
    Format.pp_print_char fmt '(';
    Array.iteri
      (fun i v ->
        if i > 0 then Format.pp_print_char fmt ',';
        Vertex.pp fmt v)
      p;
    Format.pp_print_char fmt ')'
  end

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
