(** Set-level operations of the baseline vertex-string algebra, mirroring
    the ternary algebra's {!Mrpa_core.Path_set} so EXP-T7 can race them on
    identical traversals. *)

open Mrpa_graph

type t = Vpath.Set.t

val empty : t
val epsilon : t
val of_list : Vpath.t list -> t

val of_digraph : Digraph.t -> t
(** Project the multi-relational edge set to vertex pairs — the lossy
    binary view [Ë ⊆ V × V]. Parallel edges with different labels collapse
    here; this collapse is the §II deficiency under study. *)

val union : t -> t -> t

val join : t -> t -> t
(** Concatenative join over vertex strings: pairs with [last a = first b]
    (or an empty operand) concatenate with endpoint merging. *)

val join_power : t -> int -> t
(** [n]-fold join; [0] gives [epsilon]. *)

val source_restrict : Vertex.Set.t -> t -> t
val dest_restrict : Vertex.Set.t -> t -> t

val cardinal : t -> int
val elements : t -> Vpath.t list
val equal : t -> t -> bool
val mem : Vpath.t -> t -> bool
val pp : Format.formatter -> t -> unit
