(** Vertex-string paths: the concatenative single-relational path algebra of
    the paper's ref. [4] (Russling), reimplemented as the baseline for
    EXP-T7.

    In that algebra a path is a string of {e vertices} — an edge [(i,j)] is
    the two-letter string [ij] — and concatenation of joint paths merges the
    shared endpoint: [ij ∘ jk = ijk]. The paper's §II closing argument is
    that when the underlying graph is multi-relational this representation
    loses the path label: [e ∘ f] no longer records {e which} relations were
    traversed. {!Label_recovery} quantifies exactly that loss. *)

open Mrpa_graph

type t
(** A vertex string. The empty string is the monoid identity; a single
    vertex is a length-0 path; [k+1] vertices form a path of length [k]. *)

val empty : t
val is_empty : t -> bool

val of_vertex : Vertex.t -> t

val of_edge : Vertex.t -> Vertex.t -> t
(** The two-letter string [ij]. *)

val of_vertices : Vertex.t list -> t

val length : t -> int
(** Number of hops: [max 0 (n_vertices - 1)]. *)

val first : t -> Vertex.t option
val last : t -> Vertex.t option

val vertices : t -> Vertex.t list

val joint : t -> t -> bool
(** May the two strings be concatenated with endpoint merging? True when
    either is empty or [last a = first b]. *)

val concat : t -> t -> t
(** Joint concatenation with endpoint merging ([ij ∘ jk = ijk]). Raises
    [Invalid_argument] when not {!joint} — the baseline algebra has no
    disjoint concatenation. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
