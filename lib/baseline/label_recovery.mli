(** Quantifying the §II deficiency: given a vertex string produced by the
    binary algebra, how much label information is unrecoverable?

    A vertex string [(v₀, …, vₖ)] is consistent with every label word
    [(ω₁, …, ωₖ)] such that [(vᵢ₋₁, ωᵢ, vᵢ) ∈ E]. The string determines its
    path label only when that set of words is a singleton; when parallel
    relations exist between consecutive vertices the count multiplies and
    the label is ambiguous — precisely why the paper adopts the ternary
    edge algebra. *)

open Mrpa_graph

val labels_between : Digraph.t -> Vertex.t -> Vertex.t -> Label.t list
(** Distinct labels [α] with [(u, α, v) ∈ E], in increasing id order. *)

val word_count : Digraph.t -> Vpath.t -> int
(** Number of label words consistent with the vertex string: the product
    over consecutive vertex pairs of the parallel-edge label counts. The
    empty string and single vertices count 1 (the empty word); a string
    using a vertex pair with no edge at all counts 0 (not realisable). *)

val words : ?limit:int -> Digraph.t -> Vpath.t -> Label.t list list
(** Enumerate the consistent label words (at most [limit], default 1000). *)

val is_ambiguous : Digraph.t -> Vpath.t -> bool
(** [word_count > 1]. *)

type census = {
  total : int;  (** vertex strings examined. *)
  unrealisable : int;  (** word count 0 (string not backed by edges). *)
  unambiguous : int;  (** exactly one label word. *)
  ambiguous : int;  (** more than one label word. *)
  max_words : int;  (** largest word count seen. *)
  total_words : int;  (** sum of word counts. *)
}

val census : Digraph.t -> Vpath_set.t -> census
(** Classify every string of a set — the row generator for EXP-T7. *)

val pp_census : Format.formatter -> census -> unit
