open Mrpa_graph

let labels_between g u v =
  let labels =
    List.filter_map
      (fun e -> if Vertex.equal (Edge.head e) v then Some (Edge.label e) else None)
      (Digraph.out_edges g u)
  in
  List.sort_uniq Label.compare labels

let consecutive_pairs p =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [] | [ _ ] -> []
  in
  pairs (Vpath.vertices p)

let word_count g p =
  List.fold_left
    (fun acc (u, v) -> acc * List.length (labels_between g u v))
    1 (consecutive_pairs p)

let words ?(limit = 1000) g p =
  let rec go pairs =
    match pairs with
    | [] -> [ [] ]
    | (u, v) :: rest ->
      let tails = go rest in
      List.concat_map
        (fun l -> List.map (fun w -> l :: w) tails)
        (labels_between g u v)
  in
  let all = go (consecutive_pairs p) in
  List.filteri (fun i _ -> i < limit) all

let is_ambiguous g p = word_count g p > 1

type census = {
  total : int;
  unrealisable : int;
  unambiguous : int;
  ambiguous : int;
  max_words : int;
  total_words : int;
}

let census g s =
  Vpath.Set.fold
    (fun p acc ->
      let c = word_count g p in
      {
        total = acc.total + 1;
        unrealisable = (acc.unrealisable + if c = 0 then 1 else 0);
        unambiguous = (acc.unambiguous + if c = 1 then 1 else 0);
        ambiguous = (acc.ambiguous + if c > 1 then 1 else 0);
        max_words = max acc.max_words c;
        total_words = acc.total_words + c;
      })
    s
    {
      total = 0;
      unrealisable = 0;
      unambiguous = 0;
      ambiguous = 0;
      max_words = 0;
      total_words = 0;
    }

let pp_census fmt c =
  Format.fprintf fmt
    "strings=%d unambiguous=%d ambiguous=%d unrealisable=%d max_words=%d total_words=%d"
    c.total c.unambiguous c.ambiguous c.unrealisable c.max_words c.total_words
