open Mrpa_graph

type t = Vpath.Set.t

let empty = Vpath.Set.empty
let epsilon = Vpath.Set.singleton Vpath.empty
let of_list = Vpath.Set.of_list

let of_digraph g =
  Digraph.fold_edges
    (fun e acc -> Vpath.Set.add (Vpath.of_edge (Edge.tail e) (Edge.head e)) acc)
    g empty

let union = Vpath.Set.union

let join a b =
  let by_first = Vertex.Tbl.create (max 16 (Vpath.Set.cardinal b)) in
  let b_has_epsilon = ref false in
  Vpath.Set.iter
    (fun p ->
      match Vpath.first p with
      | None -> b_has_epsilon := true
      | Some v ->
        let existing =
          match Vertex.Tbl.find_opt by_first v with Some l -> l | None -> []
        in
        Vertex.Tbl.replace by_first v (p :: existing))
    b;
  Vpath.Set.fold
    (fun pa acc ->
      match Vpath.last pa with
      | None -> Vpath.Set.union acc b
      | Some h ->
        let acc = if !b_has_epsilon then Vpath.Set.add pa acc else acc in
        let matches =
          match Vertex.Tbl.find_opt by_first h with Some l -> l | None -> []
        in
        List.fold_left
          (fun acc pb -> Vpath.Set.add (Vpath.concat pa pb) acc)
          acc matches)
    a empty

let join_power a n =
  if n < 0 then invalid_arg "Vpath_set.join_power: negative exponent";
  let rec go acc k = if k = 0 then acc else go (join acc a) (k - 1) in
  go epsilon n

let source_restrict vs s =
  Vpath.Set.filter
    (fun p ->
      match Vpath.first p with None -> false | Some v -> Vertex.Set.mem v vs)
    s

let dest_restrict vs s =
  Vpath.Set.filter
    (fun p ->
      match Vpath.last p with None -> false | Some v -> Vertex.Set.mem v vs)
    s

let cardinal = Vpath.Set.cardinal
let elements = Vpath.Set.elements
let equal = Vpath.Set.equal
let mem = Vpath.Set.mem

let pp fmt s =
  Format.pp_print_char fmt '{';
  let first = ref true in
  Vpath.Set.iter
    (fun p ->
      if not !first then Format.pp_print_string fmt ", ";
      first := false;
      Vpath.pp fmt p)
    s;
  Format.pp_print_char fmt '}'
