(** Eager deterministic recognisers.

    Subset construction over the Glushkov automaton, with the input alphabet
    quotiented to (edge signature, adjacency bit) pairs — see
    {!Edge_signature}. The construction is performed {e relative to a
    graph}: the graph's edge universe determines which signatures are
    realisable and therefore which subset states are reachable.

    Recognition remains correct for paths containing edges absent from the
    build graph: an edge with an unseen signature falls back to a dynamic
    transition computed from the state's member positions (at a small cost,
    uncached). After {!minimize} the fallback uses a representative member,
    which is exact for the build graph's edges and for any edge whose
    signature was part of the construction alphabet. *)

open Mrpa_graph
open Mrpa_core

type t

val create : ?alpha:Edge_signature.t -> Digraph.t -> Expr.t -> t
(** Determinise the expression against the graph's signature alphabet.
    [?alpha] overrides the alphabet (it must cover every selector occurring
    in the expression — {!Edge_signature.of_selectors} over a superset);
    used to put two automata over one alphabet for {!equivalent}. *)

val minimize : t -> t
(** Moore partition refinement over the construction alphabet. The result
    recognises the same language over that alphabet with the minimum number
    of states. *)

val accepts : t -> Path.t -> bool

val equivalent : Digraph.t -> Expr.t -> Expr.t -> bool
(** Do the two expressions denote the same path language over the graph's
    edge universe, for paths of {e any} length? Decided by walking the
    product of the two eager DFAs over a shared signature alphabet — no
    length bound and no path set involved.

    Sound and complete at the level of signature strings: a [true] answer
    guarantees equal denotations at every length bound; a [false] answer
    exhibits a distinguishing signature string, which corresponds to a
    distinguishing path whenever consecutive signatures are realisable by
    actual adjacent/non-adjacent edge pairs (true for the common selector
    shapes; in the general case [false] can be conservative). *)

val included : Digraph.t -> Expr.t -> Expr.t -> bool
(** Language inclusion over the graph's edge universe at every length:
    does every path denoted by the first expression belong to the second's
    denotation? Same product construction and the same caveats as
    {!equivalent}. [equivalent g a b = included g a b && included g b a]
    (property-tested). *)

val n_states : t -> int
(** Number of subset states (including the dead state when reachable). *)

val n_letters : t -> int
(** Size of the construction alphabet: distinct signatures × adjacency. *)

val pp : Format.formatter -> t -> unit

(** {1 Shared subset-construction primitives}

    Used by {!Lazy_dfa}; exposed because both determinisers step position
    sets by quotient letters the same way. *)

val pos_signature_indices : Glushkov.t -> Edge_signature.t -> int array
(** For each position, the bit index of its selector in the signature
    alphabet (index 0 of the array, the initial state, is a placeholder). *)

val step_mask : Glushkov.t -> int array -> int list -> int -> bool -> int list
(** [step_mask a pos_sig config mask adj]: the sorted position set reachable
    from [config] by consuming any edge with signature [mask] whose
    adjacency to the previous edge is [adj]. *)

val accepting_config : Glushkov.t -> int list -> bool
