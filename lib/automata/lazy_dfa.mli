(** Lazy (on-the-fly) determinisation.

    Subset states are discovered and cached as recognition consumes edges,
    keyed by (signature mask, adjacency bit). No graph is needed up front —
    the alphabet materialises from the edges actually seen — which makes
    this the right deterministic strategy for recognising a stream of paths
    without owning the whole edge universe. *)

open Mrpa_graph
open Mrpa_core

type t

val create : Expr.t -> t
(** Compile the expression; no subset states are built yet. The cache is
    internal and mutable; a value of type [t] may be reused across any
    number of {!accepts} calls (single-threaded). *)

val accepts : t -> Path.t -> bool

val n_cached_states : t -> int
(** Number of subset states materialised so far (diagnostic). *)
