open Mrpa_graph
open Mrpa_core

type t = Subset.t

let create (expr : Expr.t) : t = Subset.make expr

let accepts t path =
  let edges = Path.to_array path in
  let n = Array.length edges in
  let rec run state prev i =
    if i >= n then Subset.accepting t state
    else
      let e = edges.(i) in
      run (Subset.step_edge t state ~prev e) (Some e) (i + 1)
  in
  run (Subset.initial t) None 0

let n_cached_states = Subset.n_cached_states
