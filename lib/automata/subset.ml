open Mrpa_graph

type t = {
  glushkov : Glushkov.t;
  alpha : Edge_signature.t;
  pos_sig : int array;
  state_ids : (int list, int) Hashtbl.t;
  mutable members : int list array;
  mutable n_states : int;
  trans : (int * int * bool, int) Hashtbl.t;
  accept_cache : (int, bool) Hashtbl.t;
}

let make expr =
  let glushkov = Glushkov.build expr in
  let alpha = Edge_signature.of_expr expr in
  let pos_sig = Dfa.pos_signature_indices glushkov alpha in
  {
    glushkov;
    alpha;
    pos_sig;
    state_ids = Hashtbl.create 64;
    members = Array.make 8 [];
    n_states = 0;
    trans = Hashtbl.create 256;
    accept_cache = Hashtbl.create 64;
  }

let intern t config =
  match Hashtbl.find_opt t.state_ids config with
  | Some id -> id
  | None ->
    let id = t.n_states in
    if id >= Array.length t.members then begin
      let bigger = Array.make (2 * Array.length t.members) [] in
      Array.blit t.members 0 bigger 0 t.n_states;
      t.members <- bigger
    end;
    t.members.(id) <- config;
    t.n_states <- id + 1;
    Hashtbl.add t.state_ids config id;
    id

let initial t = intern t [ 0 ]

let step t id ~mask ~adj =
  match Hashtbl.find_opt t.trans (id, mask, adj) with
  | Some id' -> id'
  | None ->
    let config' = Dfa.step_mask t.glushkov t.pos_sig t.members.(id) mask adj in
    let id' = intern t config' in
    Hashtbl.add t.trans (id, mask, adj) id';
    id'

let mask_of_edge t e = Edge_signature.mask_of_edge t.alpha e

let step_edge t id ~prev e =
  let adj = match prev with None -> true | Some pe -> Edge.adjacent pe e in
  step t id ~mask:(mask_of_edge t e) ~adj

let accepting t id =
  match Hashtbl.find_opt t.accept_cache id with
  | Some b -> b
  | None ->
    let b = Dfa.accepting_config t.glushkov t.members.(id) in
    Hashtbl.add t.accept_cache id b;
    b

let is_dead t id = t.members.(id) = []
let graph_masks t g = Edge_signature.masks_of_graph t.alpha g

let has_live_free_step t id ~masks =
  List.exists (fun mask -> not (is_dead t (step t id ~mask ~adj:false))) masks

let n_cached_states t = t.n_states
let nullable t = t.glushkov.Glushkov.nullable
