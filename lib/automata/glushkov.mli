(** Position (Glushkov) automata for regular path expressions.

    The paper's §IV-A automata label transitions with edge {e sets} and test
    set membership (footnote 9). The Glushkov construction fits this exactly:
    each occurrence of a selector in the expression becomes one state
    ("position"), and a transition [p → q] consumes an edge matched by
    [q]'s selector.

    Where this construction earns its keep is the join/product distinction.
    In the algebra, [R ./∘ Q] only concatenates {e adjacent} paths while
    [R ×∘ Q] concatenates freely, so the constraint between two consecutive
    edges of a recognised path is decided by the {e lowest common ancestor}
    of their two positions in the syntax tree. Glushkov's [Follow] sets are
    computed structurally at exactly those ancestors, so every follow pair
    carries its boundary kind: {!Joint} pairs additionally require
    [γ⁺(previous edge) = γ⁻(next edge)], {!Free} pairs do not. No epsilon
    transitions exist, which keeps both recognition and generation simple
    and exact — including for expressions mixing [./∘] and [×∘]. *)

open Mrpa_graph
open Mrpa_core

type kind =
  | Joint  (** boundary introduced by [./∘] or [*]: adjacency required. *)
  | Free  (** boundary introduced by [×∘]: no adjacency constraint. *)

type t = private {
  expr : Expr.t;  (** the compiled expression. *)
  n_positions : int;  (** positions are numbered [1 .. n_positions]. *)
  selector_of : Selector.t array;
      (** [selector_of.(p)] for [p] in [1 .. n]; index 0 is unused. *)
  first : int list;  (** positions that may consume the first edge. *)
  follow : (int * kind) list array;
      (** [follow.(p)]: positions reachable after [p], with boundary kind. *)
  last : bool array;  (** may the expression end at this position? *)
  nullable : bool;  (** does the expression accept [ε]? *)
}

val build : Expr.t -> t
(** Compile an expression. Time and size are linear in the number of
    positions except for [Follow], which is quadratic in the worst case. *)

val n_states : t -> int
(** Positions plus the initial state. *)

val accepts : t -> Path.t -> bool
(** Non-deterministic simulation: position-set subset simulation over the
    edges of the path. Because all simulation branches share the same
    consumed prefix, the "previous edge" needed by {!Joint} follow pairs is
    known deterministically and the simulation is exact. [ε] is accepted iff
    the expression is nullable. *)

val step :
  t -> current:int list -> prev:Edge.t option -> Edge.t -> int list
(** One simulation step: the positions reachable from [current] by consuming
    the given edge, where [prev] is the previously consumed edge ([None]
    when [current] still contains the initial state only). Exposed for the
    lazy-DFA and the generators. Initial state is encoded as position [0]. *)

val initial : t -> int list
(** [[0]] — the start configuration for {!step}. *)

val accepting : t -> int list -> bool
(** Is any position in the configuration accepting? (Position 0 is accepting
    iff the expression is nullable.) *)

val pp : Format.formatter -> t -> unit
(** Debug rendering: positions, selectors, first/last/follow. *)
