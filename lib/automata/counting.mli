(** Exact path counting without enumeration.

    [|denote(r)|] grows exponentially with the length bound on cyclic
    graphs, so materialising it (as {!Generator} and {!Stack_machine} must)
    is the wrong tool when only the {e number} of paths is wanted. This
    module counts by dynamic programming over the product of the graph with
    the determinised automaton: a configuration is (subset state, current
    vertex), and because the subset automaton is deterministic on the
    (signature, adjacency) quotient, each path corresponds to exactly one
    trajectory — so trajectory counts are {e distinct path} counts, with no
    set ever materialised.

    Cost is [O(max_length · #configs · deg)] and memory is one counter per
    configuration, versus the output-sized cost of enumeration. EXP-T5b
    races the two. *)

open Mrpa_graph
open Mrpa_core

type stats = {
  mutable subset_states : int;
      (** lazy-DFA subset states interned by the run ({!Subset}). *)
  mutable peak_configs : int;
      (** high-water mark of live (state, vertex) DP configurations. *)
}

val fresh_stats : unit -> stats
(** A zeroed record; pass as [?stats] to have the count fill it in. *)

val count_by_length :
  ?stats:stats ->
  ?guard:Guard.t ->
  Digraph.t ->
  Expr.t ->
  max_length:int ->
  int array
(** [count_by_length g r ~max_length] returns an array [c] of size
    [max_length + 1] where [c.(len)] is the number of distinct paths of
    length exactly [len] denoted by [r] over [g].

    With [?guard] the DP polls once per expanded configuration (fuel cost
    1, live = configurations in the level being built). On
    {!Mrpa_core.Guard.Abort} the counts accumulated for completed lengths
    are returned as-is and later entries stay 0 — every entry is a sound
    lower bound, and lengths the run finished are exact. *)

val count :
  ?stats:stats -> ?guard:Guard.t -> Digraph.t -> Expr.t -> max_length:int -> int
(** Total over all lengths up to the bound — equal to
    [Path_set.cardinal (Expr.denote g ~max_length r)] (property-tested).
    Under a guard abort this is a sound lower bound (see
    {!count_by_length}). *)
