(** Shared lazy subset-construction runtime.

    {!Lazy_dfa} (recognition), {!Counting} (path counting) and
    {!Mrpa_semiring.Eval} (weighted aggregation) all walk the same
    deterministic machine: position sets of the Glushkov automaton, stepped
    by the (signature mask, adjacency bit) quotient letters of
    {!Edge_signature}, with states interned on demand. This module is that
    machine, factored out once.

    Determinism is the load-bearing property: each path corresponds to
    exactly one trajectory of interned states, so trajectory-level dynamic
    programming aggregates each path exactly once. *)

open Mrpa_graph
open Mrpa_core

type t

val make : Expr.t -> t
(** Compile an expression; no subset states are built yet. The value is
    mutable internally (state/transition caches) and single-threaded. *)

val initial : t -> int
(** The interned start state (the configuration holding only the Glushkov
    initial position). *)

val step : t -> int -> mask:int -> adj:bool -> int
(** Deterministic transition on a quotient letter, interning the successor
    on first use. *)

val step_edge : t -> int -> prev:Edge.t option -> Edge.t -> int
(** Convenience: compute the letter from a concrete edge and its
    predecessor ([prev = None] means this is the first edge). *)

val accepting : t -> int -> bool

val is_dead : t -> int -> bool
(** The empty configuration: no run can continue. *)

val mask_of_edge : t -> Edge.t -> int
(** Signature of an edge under the expression's selector alphabet. *)

val graph_masks : t -> Digraph.t -> int list
(** Distinct signatures realised by a graph (always includes 0). *)

val has_live_free_step : t -> int -> masks:int list -> bool
(** Can any adjacency-false letter lead anywhere from this state? When not,
    only out-edges of the current vertex can extend a trajectory — the
    common pure-join case. *)

val n_cached_states : t -> int
(** Diagnostic: subset states materialised so far. *)

val nullable : t -> bool
(** Does the compiled expression accept [ε]? *)
