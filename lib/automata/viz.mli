(** Graphviz rendering of compiled automata — the paper's Figure 1, as a
    diagram, for any expression.

    Following the figure's conventions: the start state is the unlabeled
    entry point, accepting states are double circles, and transitions are
    labeled with the edge {e set} they consume (set membership, not symbol
    equality — footnote 9). Boundaries introduced by [×∘] (which permit a
    disjoint hop) are drawn dashed. *)

open Mrpa_graph
open Mrpa_core

val to_dot : ?name:string -> ?graph:Digraph.t -> Glushkov.t -> string
(** DOT source for the automaton. With [?graph], selector labels are
    rendered with vertex/label names resolved through the graph (otherwise
    raw integer ids). *)

val expr_to_dot : ?name:string -> ?graph:Digraph.t -> Expr.t -> string
(** Compile and render in one step. *)

val save : ?name:string -> ?graph:Digraph.t -> string -> Glushkov.t -> unit
(** [save path a] writes DOT source to [path]. *)
