(** Regular path recognition (paper, §IV-A): deciding whether a given path
    belongs to the set denoted by a regular path expression.

    Four interchangeable strategies are provided; property tests hold them
    equal and EXP-T4 races them:

    - {!cubic}: direct memoised structural matching on path segments. The
      only strategy that is {e defined} for every expression, including ones
      mixing [×∘] with nullable operands in pathological ways; [O(n³·|r|)]
      in the path length [n]. Used as the oracle.
    - {!nfa}: Glushkov position-set simulation; linear passes with small
      per-edge cost.
    - lazy DFA ({!Lazy_dfa}): determinises on demand, caching subset states
      keyed by edge signature and adjacency; amortises repeated recognition
      over path corpora.
    - eager/minimised DFA ({!Dfa}): built against a graph's edge universe. *)

open Mrpa_graph
open Mrpa_core

val cubic : Expr.t -> Path.t -> bool
(** Memoised segment matcher. Exact for all expressions. *)

val nfa : Expr.t -> Path.t -> bool
(** Builds a Glushkov automaton and simulates it (see {!Glushkov.accepts}).
    Prefer {!make_nfa} when recognising many paths with one expression. *)

val make_nfa : Expr.t -> Path.t -> bool
(** Staged version of {!nfa}: compile once, recognise many. *)

type strategy = Cubic | Nfa | Lazy_dfa | Eager_dfa | Min_dfa

val make : ?strategy:strategy -> ?graph:Digraph.t -> Expr.t -> Path.t -> bool
(** [make ~strategy ~graph r] stages a recogniser for [r].
    [Eager_dfa] and [Min_dfa] require [graph] (their subset construction
    enumerates the graph's signature alphabet) and raise [Invalid_argument]
    without it. Default strategy: [Nfa]. *)

val strategies : (string * strategy) list
(** Name/strategy table for CLIs and benches. *)
