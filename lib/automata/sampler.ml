open Mrpa_graph

type t = {
  graph : Digraph.t;
  machine : Subset.t;
  masks : int list;
  max_length : int;
  (* N_t(state, vertex): accepted continuations consuming exactly t more
     edges. vertex = -1 encodes "no edge consumed yet". *)
  completions : (int * int * int, int) Hashtbl.t;
}

(* Candidate edges leaving a configuration, with their adjacency bit. *)
let candidates t state vertex =
  if vertex < 0 then List.map (fun e -> (e, true)) (Digraph.edges t.graph)
  else begin
    let v = Vertex.of_int vertex in
    let local =
      List.map (fun e -> (e, true)) (Digraph.out_edges t.graph v)
    in
    if Subset.has_live_free_step t.machine state ~masks:t.masks then
      local
      @ List.filter_map
          (fun e ->
            if Vertex.equal (Edge.tail e) v then None else Some (e, false))
          (Digraph.edges t.graph)
    else local
  end

let rec completions t state vertex remaining =
  if remaining = 0 then if Subset.accepting t.machine state then 1 else 0
  else
    match Hashtbl.find_opt t.completions (state, vertex, remaining) with
    | Some n -> n
    | None ->
      let total =
        List.fold_left
          (fun acc (e, adj) ->
            let mask = Subset.mask_of_edge t.machine e in
            if mask = 0 then acc
            else begin
              let state' = Subset.step t.machine state ~mask ~adj in
              if Subset.is_dead t.machine state' then acc
              else
                acc
                + completions t state' (Vertex.to_int (Edge.head e))
                    (remaining - 1)
            end)
          0 (candidates t state vertex)
      in
      Hashtbl.add t.completions (state, vertex, remaining) total;
      total

let prepare graph expr ~max_length =
  if max_length < 0 then invalid_arg "Sampler.prepare: negative max_length";
  let machine = Subset.make expr in
  let masks =
    List.filter (fun mask -> mask <> 0) (Subset.graph_masks machine graph)
  in
  { graph; machine; masks; max_length; completions = Hashtbl.create 256 }

let initial_config t = (Subset.initial t.machine, -1)

let population t =
  let state, vertex = initial_config t in
  let total = ref 0 in
  for len = 0 to t.max_length do
    total := !total + completions t state vertex len
  done;
  !total

let draw t rng =
  let state0, vertex0 = initial_config t in
  let total = population t in
  if total = 0 then None
  else begin
    (* choose the target length proportional to its population *)
    let target = Prng.int rng total in
    let rec pick_length len acc =
      let here = completions t state0 vertex0 len in
      if target < acc + here then len else pick_length (len + 1) (acc + here)
    in
    let length = pick_length 0 0 in
    (* walk forward, choosing each edge proportional to its completions *)
    let rec walk state vertex remaining acc_edges =
      if remaining = 0 then Path.of_edges (List.rev acc_edges)
      else begin
        let weighted =
          List.filter_map
            (fun (e, adj) ->
              let mask = Subset.mask_of_edge t.machine e in
              if mask = 0 then None
              else begin
                let state' = Subset.step t.machine state ~mask ~adj in
                if Subset.is_dead t.machine state' then None
                else
                  let n =
                    completions t state' (Vertex.to_int (Edge.head e))
                      (remaining - 1)
                  in
                  if n = 0 then None else Some (e, state', n)
              end)
            (candidates t state vertex)
        in
        let subtotal = List.fold_left (fun acc (_, _, n) -> acc + n) 0 weighted in
        (* subtotal > 0 by construction of [length] *)
        let ticket = Prng.int rng subtotal in
        let rec choose acc = function
          | [] -> assert false
          | (e, state', n) :: rest ->
            if ticket < acc + n then
              walk state' (Vertex.to_int (Edge.head e)) (remaining - 1)
                (e :: acc_edges)
            else choose (acc + n) rest
        in
        choose 0 weighted
      end
    in
    Some (walk state0 vertex0 length [])
  end

let sample t rng n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match draw t rng with
      | None -> []
      | Some p -> go (p :: acc) (k - 1)
  in
  go [] n

let sample_expr ~rng graph expr ~max_length n =
  sample (prepare graph expr ~max_length) rng n
