open Mrpa_core

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let selector_text ?graph s =
  match graph with
  | Some g -> Format.asprintf "%a" (Selector.pp_named g) s
  | None -> Format.asprintf "%a" Selector.pp s

let successors (a : Glushkov.t) p =
  if p = 0 then List.map (fun q -> (q, Glushkov.Free)) a.first
  else a.follow.(p)

let to_dot ?(name = "automaton") ?graph (a : Glushkov.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n";
  Buffer.add_string buf "  start [shape=point, label=\"\"];\n";
  let accepting p = if p = 0 then a.Glushkov.nullable else a.Glushkov.last.(p) in
  (* the start state is state 0; it is drawn as the entry arrow's target *)
  Buffer.add_string buf
    (Printf.sprintf "  q0 [shape=%s, label=\"q0\"];\n"
       (if accepting 0 then "doublecircle" else "circle"));
  Buffer.add_string buf "  start -> q0;\n";
  for p = 1 to a.Glushkov.n_positions do
    Buffer.add_string buf
      (Printf.sprintf "  q%d [shape=%s, label=\"q%d\"];\n" p
         (if accepting p then "doublecircle" else "circle")
         p)
  done;
  for p = 0 to a.Glushkov.n_positions do
    List.iter
      (fun (q, kind) ->
        let label = selector_text ?graph a.Glushkov.selector_of.(q) in
        let style =
          (* a free boundary after a consumed edge allows a disjoint hop *)
          if p > 0 && kind = Glushkov.Free then ", style=dashed" else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  q%d -> q%d [label=\"%s\"%s];\n" p q (escape label)
             style))
      (successors a p)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let expr_to_dot ?name ?graph expr = to_dot ?name ?graph (Glushkov.build expr)

let save ?name ?graph path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?graph a))
