open Mrpa_graph
open Mrpa_core

type stats = {
  mutable edges_scanned : int;
  mutable paths_emitted : int;
  mutable max_depth : int;
  mutable max_frontier : int;
}

let fresh_stats () =
  { edges_scanned = 0; paths_emitted = 0; max_depth = 0; max_frontier = 0 }

let successors (a : Glushkov.t) p =
  if p = 0 then List.map (fun q -> (q, Glushkov.Free)) a.first
  else a.follow.(p)

(* Simple-path pruning works on the vertex itinerary (Path.vertices): the
   tails of all consumed edges plus the {e final} head. Only tails are
   permanent — an intermediate head leaves the itinerary when the next step
   is disjoint ([×∘]), exactly as {!Path.vertices} defines it — so the
   search prunes on a fresh-tail condition and checks the head condition
   only when a path is emitted. The tail set grows strictly, bounding
   simple-path search depth by [|V|] regardless of [max_length]. *)

let to_seq ?stats ?(guard = Guard.none) ?(simple = false) g (a : Glushkov.t)
    ~max_length =
  if max_length < 0 then invalid_arg "Generator.to_seq: negative max_length";
  let bump f = match stats with None -> () | Some s -> f s in
  let accepting p = if p = 0 then a.nullable else a.last.(p) in
  let emit_ok tails e =
    (not simple)
    || (not (Vertex.Set.mem (Edge.head e) tails))
       && not (Edge.is_loop e)
  in
  let rec extend p last rev_edges tails len : Path.t Seq.t =
    if len >= max_length then Seq.empty
    else
      Seq.concat_map
        (fun (q, kind) ->
          (* The search is path-at-a-time, so live memory is just the spine
             of the current extension: report the banked count upstream
             instead (generate_automaton polls it). *)
          guard.Guard.poll ~cost:1 ~live:0;
          let candidates =
            match (last, kind) with
            | None, _ | Some _, Glushkov.Free ->
              Selector.enumerate g a.selector_of.(q)
            | Some e, Glushkov.Joint ->
              Selector.select_out g a.selector_of.(q) (Edge.head e)
          in
          bump (fun s ->
              let n = List.length candidates in
              s.edges_scanned <- s.edges_scanned + n;
              s.max_frontier <- max s.max_frontier n);
          let candidates =
            if simple then
              List.filter
                (fun e -> not (Vertex.Set.mem (Edge.tail e) tails))
                candidates
            else candidates
          in
          Seq.concat_map
            (fun e ->
              bump (fun s -> s.max_depth <- max s.max_depth (len + 1));
              let rev_edges' = e :: rev_edges in
              let tails' =
                if simple then Vertex.Set.add (Edge.tail e) tails else tails
              in
              let here =
                if accepting q && emit_ok tails' e then
                  fun () ->
                    bump (fun s -> s.paths_emitted <- s.paths_emitted + 1);
                    Seq.Cons (Path.of_edges (List.rev rev_edges'), Seq.empty)
                else Seq.empty
              in
              Seq.append here (extend q (Some e) rev_edges' tails' (len + 1)))
            (List.to_seq candidates))
        (List.to_seq (successors a p))
  in
  let eps =
    if a.nullable then
      fun () ->
        bump (fun s -> s.paths_emitted <- s.paths_emitted + 1);
        Seq.Cons (Path.empty, Seq.empty)
    else Seq.empty
  in
  Seq.append eps (extend 0 None [] Vertex.Set.empty 0)

let generate_automaton ?stats ?(guard = Guard.none) ?max_paths ?simple g a
    ~max_length =
  let seq = to_seq ?stats ~guard ?simple g a ~max_length in
  let stop n = match max_paths with None -> false | Some m -> n >= m in
  (* An abort mid-stream degrades to the distinct paths banked so far — a
     sound subset of the denotation. The would-be bank count is polled
     before adding, so a memory budget is never exceeded. *)
  let rec collect acc n seq =
    if stop n then acc
    else
      match seq () with
      | exception Guard.Abort _ -> acc
      | Seq.Nil -> acc
      | Seq.Cons (p, rest) ->
        if Path_set.mem p acc then collect acc n rest
        else (
          match guard.Guard.poll ~cost:0 ~live:(n + 1) with
          | () -> collect (Path_set.add p acc) (n + 1) rest
          | exception Guard.Abort _ -> acc)
  in
  collect Path_set.empty 0 seq

let generate ?stats ?guard ?max_paths ?simple g expr ~max_length =
  generate_automaton ?stats ?guard ?max_paths ?simple g (Glushkov.build expr)
    ~max_length

let exists g expr ~max_length =
  not (Path_set.is_empty (generate ~max_paths:1 g expr ~max_length))

let count g expr ~max_length =
  Path_set.cardinal (generate g expr ~max_length)
