(** Uniform random sampling from a denoted path set — without enumerating
    it.

    [denote(r)] can be astronomically large while still admitting exact
    counting ({!Counting}); the classic count-then-sample construction turns
    those counts into an {e exactly uniform} sampler: suffix-completion
    counts [N_t(config)] (the number of accepted continuations consuming
    exactly [t] more edges) are memoised over the deterministic
    {!Subset}-machine configurations, a target length is drawn proportional
    to [N_t(initial)], and each edge is then chosen with probability
    proportional to the completions it leads to. Every denoted path of
    length at most the bound is returned with probability [1/|denote|].

    Uses: statistical estimation over huge path populations (mean cost,
    property prevalence), randomised testing, and Monte-Carlo baselines for
    the exact semiring aggregations. *)

open Mrpa_graph
open Mrpa_core

type t
(** A prepared sampler: expression compiled, counts memoised on demand.
    Reusable across draws; single-threaded. *)

val prepare : Digraph.t -> Expr.t -> max_length:int -> t

val population : t -> int
(** [|denote|] within the bound — equal to {!Counting.count}
    (property-tested). *)

val draw : t -> Prng.t -> Path.t option
(** One uniform draw; [None] when the denoted set is empty. *)

val sample : t -> Prng.t -> int -> Path.t list
(** [sample t rng n]: [n] independent uniform draws (with replacement).
    Empty list when the population is empty. *)

val sample_expr :
  rng:Prng.t -> Digraph.t -> Expr.t -> max_length:int -> int -> Path.t list
(** One-shot convenience: prepare and sample. *)
