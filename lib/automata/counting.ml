open Mrpa_graph

(* Trajectory-level dynamic programming over the lazy subset machine
   ({!Subset}): a configuration is (subset state, current vertex); because
   the machine is deterministic on (signature, adjacency) letters, each path
   corresponds to exactly one trajectory and trajectory counts are distinct
   path counts. The pre-first-edge configuration carries vertex [-1]. *)

type stats = { mutable subset_states : int; mutable peak_configs : int }

let fresh_stats () = { subset_states = 0; peak_configs = 0 }

let count_by_length ?stats ?(guard = Mrpa_core.Guard.none) g expr ~max_length =
  if max_length < 0 then invalid_arg "Counting.count_by_length: negative bound";
  let record f = match stats with None -> () | Some s -> f s in
  let m = Subset.make expr in
  let masks = List.filter (fun mask -> mask <> 0) (Subset.graph_masks m g) in
  let counts = Array.make (max_length + 1) 0 in
  let initial = Subset.initial m in
  if Subset.accepting m initial then counts.(0) <- 1;
  let level : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.add level (initial, -1) 1;
  let bump tbl key c =
    Hashtbl.replace tbl key
      (c + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let all_edges = Digraph.edges g in
  (try
    for len = 1 to max_length do
    let next : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (state, vertex) c ->
        (* One poll per expanded configuration; live = DP table being
           built. Hashtbl.length is O(1), so this is cheap. *)
        guard.Mrpa_core.Guard.poll ~cost:1 ~live:(Hashtbl.length next);
        let consume e adj =
          let mask = Subset.mask_of_edge m e in
          if mask <> 0 then begin
            let state' = Subset.step m state ~mask ~adj in
            if not (Subset.is_dead m state') then
              bump next (state', Vertex.to_int (Edge.head e)) c
          end
        in
        if vertex < 0 then
          (* before the first edge every edge is a candidate; the adjacency
             bit is vacuous (mirrors recognition). *)
          List.iter (fun e -> consume e true) all_edges
        else begin
          let v = Vertex.of_int vertex in
          List.iter (fun e -> consume e true) (Digraph.out_edges g v);
          if Subset.has_live_free_step m state ~masks then
            List.iter
              (fun e ->
                if not (Vertex.equal (Edge.tail e) v) then consume e false)
              all_edges
        end)
      level;
    Hashtbl.reset level;
    record (fun s -> s.peak_configs <- max s.peak_configs (Hashtbl.length next));
    Hashtbl.iter
      (fun (state, vertex) c ->
        Hashtbl.replace level (state, vertex) c;
        if Subset.accepting m state then counts.(len) <- counts.(len) + c)
      next
    done
  with Mrpa_core.Guard.Abort _ ->
    (* Graceful degradation: counts for every completed length are exact;
       the aborted length was never folded into [counts], so the array is a
       sound lower bound per entry. *)
    ());
  record (fun s -> s.subset_states <- Subset.n_cached_states m);
  counts

let count ?stats ?guard g expr ~max_length =
  Array.fold_left ( + ) 0 (count_by_length ?stats ?guard g expr ~max_length)
