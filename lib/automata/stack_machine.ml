open Mrpa_graph
open Mrpa_core

type trace_entry = { depth : int; state : int; stack_top : Path_set.t }

type stats = {
  mutable pops : int;
  mutable pushes : int;
  mutable levels : int;
  mutable max_live_branches : int;
  mutable peak_stack_paths : int;
  mutable peak_live_paths : int;
}

let fresh_stats () =
  {
    pops = 0;
    pushes = 0;
    levels = 0;
    max_live_branches = 0;
    peak_stack_paths = 0;
    peak_live_paths = 0;
  }

let successors (a : Glushkov.t) p =
  if p = 0 then List.map (fun q -> (q, Glushkov.Free)) a.first
  else a.follow.(p)

exception Limit_reached

let run_automaton ?trace ?stats ?(guard = Guard.none) ?(simple = false) ?limit
    g (a : Glushkov.t) ~max_length =
  if max_length < 0 then invalid_arg "Stack_machine.run: negative max_length";
  (match limit with
  | Some k when k < 0 -> invalid_arg "Stack_machine.run: negative limit"
  | _ -> ());
  if limit = Some 0 then Path_set.empty
  else begin
    let observe depth state stack_top =
      match trace with
      | None -> ()
      | Some f -> f { depth; state; stack_top }
    in
    let bump f = match stats with None -> () | Some s -> f s in
    (* Live-path count of the last completed level, reported to the guard at
       every transition so memory verdicts don't wait for a level boundary. *)
    let last_live = ref 1 in
    (* Edge sets denoted by each position's transition label, fetched once. *)
    let edge_paths =
      Array.init (a.n_positions + 1) (fun p ->
          if p = 0 then Path_set.empty
          else Path_set.of_edges (Selector.enumerate g a.selector_of.(p)))
    in
    let accepting p = if p = 0 then a.nullable else a.last.(p) in
    let cap s = Path_set.filter (fun pa -> Path.length pa <= max_length) s in
    let keep s = if simple then Path_set.restrict_simple s else s in
    let collected = ref Path_set.empty in
    let n_collected = ref 0 in
    (* Accepted stack tops land here. With a limit, paths are added one at a
       time and the whole run aborts (Limit_reached) the moment the limit is
       met, so no further level is joined. *)
    let collect stack_top =
      match limit with
      | None -> collected := Path_set.union !collected (keep stack_top)
      | Some k ->
        Path_set.iter
          (fun p ->
            if !n_collected >= k then raise Limit_reached;
            if not (Path_set.mem p !collected) then begin
              collected := Path_set.add p !collected;
              incr n_collected
            end)
          (keep stack_top);
        if !n_collected >= k then raise Limit_reached
    in
    (* level : state -> stack top of the merged branch sitting at that state *)
    let initial_level = [ (0, Path_set.epsilon) ] in
    let step_level depth level =
      bump (fun s -> s.levels <- max s.levels depth);
      let next : (int, Path_set.t ref) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (state, stack_top) ->
          List.iter
            (fun (q, kind) ->
              (* The machine is set-at-a-time, so a flat per-transition cost
                 would undercount by the size of the sets flowing through:
                 charge the stack top about to be joined, which is the unit
                 the path-at-a-time backends charge one by one. *)
              guard.Guard.poll
                ~cost:(max 1 (Path_set.cardinal stack_top))
                ~live:!last_live;
              bump (fun s -> s.pops <- s.pops + 1);
              (* Pop, join with the transition label's path set, push. *)
              let joined =
                match kind with
                | Glushkov.Joint -> Path_set.join stack_top edge_paths.(q)
                | Glushkov.Free -> Path_set.product stack_top edge_paths.(q)
              in
              let joined = cap joined in
              if not (Path_set.is_empty joined) then begin
                bump (fun s ->
                    s.pushes <- s.pushes + 1;
                    s.peak_stack_paths <-
                      max s.peak_stack_paths (Path_set.cardinal joined));
                (* Short-circuit: under a limit, accepted paths are banked
                   per transition, before the rest of the level is joined. *)
                if limit <> None && accepting q then collect joined;
                match Hashtbl.find_opt next q with
                | Some r -> r := Path_set.union !r joined
                | None -> Hashtbl.add next q (ref joined)
              end)
            (successors a state))
        level;
      let merged =
        Hashtbl.fold (fun q r acc -> (q, !r) :: acc) next []
        |> List.sort (fun (q1, _) (q2, _) -> Int.compare q1 q2)
      in
      let live =
        List.fold_left
          (fun acc (_, top) -> acc + Path_set.cardinal top)
          (Path_set.cardinal !collected)
          merged
      in
      last_live := live;
      bump (fun s ->
          s.max_live_branches <- max s.max_live_branches (List.length merged);
          s.peak_live_paths <- max s.peak_live_paths live);
      guard.Guard.poll ~cost:0 ~live;
      List.iter
        (fun (q, stack_top) ->
          observe depth q stack_top;
          if limit = None && accepting q then collect stack_top)
        merged;
      merged
    in
    let rec loop depth level =
      if depth > max_length || level = [] then ()
      else loop (depth + 1) (step_level depth level)
    in
    (* Both stop conditions degrade the same way: the banked answers so far
       are a sound subset of the denotation, so return them. The budget
       layer upstream reads the abort reason off its own state. *)
    (try
       observe 0 0 Path_set.epsilon;
       if accepting 0 then collect Path_set.epsilon;
       bump (fun s -> s.peak_live_paths <- max s.peak_live_paths 1);
       loop 1 initial_level
     with Limit_reached | Guard.Abort _ -> ());
    (* A limit can abort a level mid-sweep, between the per-transition
       banking and the per-level live accounting; the collected set is
       always live, so fold it in before reporting. *)
    bump (fun s ->
        s.peak_live_paths <-
          max s.peak_live_paths (Path_set.cardinal !collected));
    !collected
  end

let run ?trace ?stats ?guard ?simple ?limit g expr ~max_length =
  run_automaton ?trace ?stats ?guard ?simple ?limit g (Glushkov.build expr)
    ~max_length
