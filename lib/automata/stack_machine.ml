open Mrpa_graph
open Mrpa_core

type trace_entry = { depth : int; state : int; stack_top : Path_set.t }

let successors (a : Glushkov.t) p =
  if p = 0 then List.map (fun q -> (q, Glushkov.Free)) a.first
  else a.follow.(p)

let run_automaton ?trace g (a : Glushkov.t) ~max_length =
  if max_length < 0 then invalid_arg "Stack_machine.run: negative max_length";
  let observe depth state stack_top =
    match trace with
    | None -> ()
    | Some f -> f { depth; state; stack_top }
  in
  (* Edge sets denoted by each position's transition label, fetched once. *)
  let edge_paths =
    Array.init (a.n_positions + 1) (fun p ->
        if p = 0 then Path_set.empty
        else Path_set.of_edges (Selector.enumerate g a.selector_of.(p)))
  in
  let accepting p = if p = 0 then a.nullable else a.last.(p) in
  let cap s = Path_set.filter (fun pa -> Path.length pa <= max_length) s in
  let collected = ref Path_set.empty in
  (* level : state -> stack top of the merged branch sitting at that state *)
  let initial_level = [ (0, Path_set.epsilon) ] in
  observe 0 0 Path_set.epsilon;
  if accepting 0 then collected := Path_set.union !collected Path_set.epsilon;
  let step_level depth level =
    let next : (int, Path_set.t ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (state, stack_top) ->
        List.iter
          (fun (q, kind) ->
            (* Pop, join with the transition label's path set, push. *)
            let joined =
              match kind with
              | Glushkov.Joint -> Path_set.join stack_top edge_paths.(q)
              | Glushkov.Free -> Path_set.product stack_top edge_paths.(q)
            in
            let joined = cap joined in
            if not (Path_set.is_empty joined) then begin
              match Hashtbl.find_opt next q with
              | Some r -> r := Path_set.union !r joined
              | None -> Hashtbl.add next q (ref joined)
            end)
          (successors a state))
      level;
    let merged =
      Hashtbl.fold (fun q r acc -> (q, !r) :: acc) next []
      |> List.sort (fun (q1, _) (q2, _) -> Int.compare q1 q2)
    in
    List.iter
      (fun (q, stack_top) ->
        observe depth q stack_top;
        if accepting q then collected := Path_set.union !collected stack_top)
      merged;
    merged
  in
  let rec loop depth level =
    if depth > max_length || level = [] then ()
    else loop (depth + 1) (step_level depth level)
  in
  loop 1 initial_level;
  !collected

let run ?trace g expr ~max_length =
  run_automaton ?trace g (Glushkov.build expr) ~max_length
