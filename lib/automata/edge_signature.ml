open Mrpa_graph
open Mrpa_core

type t = { selectors : Selector.t array }

let of_selectors sels =
  let distinct =
    List.fold_left
      (fun acc s -> if List.exists (Selector.equal s) acc then acc else s :: acc)
      [] sels
    |> List.rev
  in
  if List.length distinct > 62 then
    invalid_arg "Edge_signature.of_selectors: more than 62 distinct selectors";
  { selectors = Array.of_list distinct }

let of_expr r = of_selectors (Expr.selectors r)

let n_selectors t = Array.length t.selectors

let selector_index t s =
  let n = Array.length t.selectors in
  let rec find i =
    if i >= n then raise Not_found
    else if Selector.equal t.selectors.(i) s then i
    else find (i + 1)
  in
  find 0

let mask_of_edge t e =
  let mask = ref 0 in
  Array.iteri
    (fun i s -> if Selector.matches s e then mask := !mask lor (1 lsl i))
    t.selectors;
  !mask

let masks_of_graph t g =
  let seen = Hashtbl.create 16 in
  Hashtbl.add seen 0 ();
  Digraph.iter_edges
    (fun e ->
      let m = mask_of_edge t e in
      if not (Hashtbl.mem seen m) then Hashtbl.add seen m ())
    g;
  List.sort Int.compare (Hashtbl.fold (fun m () acc -> m :: acc) seen [])
