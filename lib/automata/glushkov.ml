open Mrpa_graph
open Mrpa_core

type kind = Joint | Free

type t = {
  expr : Expr.t;
  n_positions : int;
  selector_of : Selector.t array;
  first : int list;
  follow : (int * kind) list array;
  last : bool array;
  nullable : bool;
}

(* Structural attributes of a subexpression during construction. *)
type attrs = { first_ : int list; last_ : int list; nullable_ : bool }

let build expr =
  let selectors = ref [] in
  let n = ref 0 in
  let follow_acc : (int, (int * kind) list ref) Hashtbl.t = Hashtbl.create 16 in
  let add_follow p q kind =
    let r =
      match Hashtbl.find_opt follow_acc p with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add follow_acc p r;
        r
    in
    if not (List.exists (fun (q', k') -> q' = q && k' = kind) !r) then
      r := (q, kind) :: !r
  in
  let cross lasts firsts kind =
    List.iter (fun p -> List.iter (fun q -> add_follow p q kind) firsts) lasts
  in
  let rec go : Expr.t -> attrs = function
    | Empty -> { first_ = []; last_ = []; nullable_ = false }
    | Epsilon -> { first_ = []; last_ = []; nullable_ = true }
    | Sel s ->
      incr n;
      let p = !n in
      selectors := s :: !selectors;
      { first_ = [ p ]; last_ = [ p ]; nullable_ = false }
    | Union (a, b) ->
      let va = go a in
      let vb = go b in
      {
        first_ = va.first_ @ vb.first_;
        last_ = va.last_ @ vb.last_;
        nullable_ = va.nullable_ || vb.nullable_;
      }
    | Join (a, b) ->
      (* left first, so positions number left to right *)
      let va = go a in
      let vb = go b in
      concatenate va vb Joint
    | Product (a, b) ->
      let va = go a in
      let vb = go b in
      concatenate va vb Free
    | Star a ->
      let va = go a in
      cross va.last_ va.first_ Joint;
      { va with nullable_ = true }
  and concatenate va vb kind =
    cross va.last_ vb.first_ kind;
    {
      first_ = (if va.nullable_ then va.first_ @ vb.first_ else va.first_);
      last_ = (if vb.nullable_ then vb.last_ @ va.last_ else vb.last_);
      nullable_ = va.nullable_ && vb.nullable_;
    }
  in
  let attrs = go expr in
  let n_positions = !n in
  let selector_of = Array.make (n_positions + 1) Selector.universe in
  List.iteri
    (fun i s -> selector_of.(n_positions - i) <- s)
    !selectors;
  let follow = Array.make (n_positions + 1) [] in
  Hashtbl.iter (fun p r -> follow.(p) <- List.rev !r) follow_acc;
  let last = Array.make (n_positions + 1) false in
  List.iter (fun p -> last.(p) <- true) attrs.last_;
  {
    expr;
    n_positions;
    selector_of;
    first = List.sort_uniq Int.compare attrs.first_;
    follow;
    last;
    nullable = attrs.nullable_;
  }

let n_states a = a.n_positions + 1
let initial _ = [ 0 ]

let accepting a config =
  List.exists (fun p -> if p = 0 then a.nullable else a.last.(p)) config

(* Candidate (position, kind) successors of a configuration. From the
   initial state 0 the candidates are First with no adjacency constraint. *)
let successors a p =
  if p = 0 then List.map (fun q -> (q, Free)) a.first else a.follow.(p)

let step a ~current ~prev e =
  let adj =
    match prev with
    | None -> fun _ -> true
    | Some pe -> fun kind -> kind = Free || Edge.adjacent pe e
  in
  let next = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (q, kind) ->
          if adj kind && Selector.matches a.selector_of.(q) e then
            if not (List.mem q !next) then next := q :: !next)
        (successors a p))
    current;
  List.sort Int.compare !next

let accepts a path =
  if Path.is_empty path then a.nullable
  else begin
    let edges = Path.to_array path in
    let n = Array.length edges in
    let rec run config prev i =
      if config = [] then false
      else if i >= n then accepting a config
      else
        let config' = step a ~current:config ~prev edges.(i) in
        run config' (Some edges.(i)) (i + 1)
    in
    run (initial a) None 0
  end

let pp fmt a =
  Format.fprintf fmt "@[<v>glushkov: %d positions, nullable=%b@," a.n_positions
    a.nullable;
  Format.fprintf fmt "first: %a@,"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    a.first;
  for p = 1 to a.n_positions do
    Format.fprintf fmt "%d: sel=%a last=%b follow=[%a]@," p Selector.pp
      a.selector_of.(p) a.last.(p)
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
         (fun fmt (q, k) ->
           Format.fprintf fmt "%d%s" q (match k with Joint -> "j" | Free -> "f")))
      a.follow.(p)
  done;
  Format.fprintf fmt "@]"
