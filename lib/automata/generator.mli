(** Efficient regular path generation: product-graph search.

    Where the paper's stack machine (§IV-B, {!Stack_machine}) advances whole
    path {e sets} level by level, this generator walks the product of the
    graph with the Glushkov automaton one path at a time: a configuration is
    (automaton position, last edge), and a [Joint] follow edge only examines
    the out-edges of the last head vertex — the graph's adjacency index does
    the restriction that the set-at-a-time join pays for with hashing.
    [Free] (i.e. [×∘]) boundaries "teleport": they draw candidates from the
    whole selector extent, faithfully implementing disjoint concatenation.

    EXP-T5 races the two against each other; property tests pin both to the
    reference denotation {!Mrpa_core.Expr.denote}. *)

open Mrpa_graph
open Mrpa_core

type stats = {
  mutable edges_scanned : int;
      (** candidate edges examined across all expansions. *)
  mutable paths_emitted : int;
      (** paths yielded by the stream (pre-deduplication). *)
  mutable max_depth : int;  (** deepest extension actually explored. *)
  mutable max_frontier : int;
      (** largest candidate-edge list of a single expansion — the
          product-search analogue of a BFS frontier width. *)
}

val fresh_stats : unit -> stats
(** A zeroed record; pass as [?stats] to have generation fill it in. The
    counters advance as the (lazy) stream is consumed — consume the stream
    once before reading them. *)

val to_seq :
  ?stats:stats ->
  ?guard:Guard.t ->
  ?simple:bool ->
  Digraph.t ->
  Glushkov.t ->
  max_length:int ->
  Path.t Seq.t
(** Lazy depth-first stream of generated paths, in discovery order. The
    stream may contain duplicates when distinct automaton runs spell the
    same path; {!generate} deduplicates.

    With [?guard] every expansion polls (fuel cost 1). Because the stream
    is lazy, a {!Mrpa_core.Guard.Abort} raised by the guard escapes through
    the {e consumer's} forcing of the sequence — callers that want graceful
    degradation must catch it there ({!generate} does; so does
    [Eval.run_seq]).

    With [~simple:true] only {e simple} paths (no repeated vertex in the
    itinerary — the regular simple paths of the paper's ref. [8]) are
    produced, and the search prunes revisits instead of post-filtering, so
    it terminates on cyclic graphs even for generous length bounds. *)

val generate :
  ?stats:stats ->
  ?guard:Guard.t ->
  ?max_paths:int ->
  ?simple:bool ->
  Digraph.t ->
  Expr.t ->
  max_length:int ->
  Path_set.t
(** All distinct paths of length at most [max_length] denoted by the
    expression over the graph. With [?max_paths] the search stops early once
    that many distinct paths are found (useful as a LIMIT); [?simple]
    restricts to simple paths as in {!to_seq}. With [?guard] an abort
    returns the distinct paths banked so far (sound subset); the bank count
    is reported as [live] before each insertion, so a memory budget is
    honoured exactly. *)

val generate_automaton :
  ?stats:stats ->
  ?guard:Guard.t ->
  ?max_paths:int ->
  ?simple:bool ->
  Digraph.t ->
  Glushkov.t ->
  max_length:int ->
  Path_set.t
(** Same, from a pre-compiled automaton. *)

val exists : Digraph.t -> Expr.t -> max_length:int -> bool
(** Is the denoted set non-empty within the length bound? Stops at the first
    witness. *)

val count : Digraph.t -> Expr.t -> max_length:int -> int
(** Cardinality of the denoted set within the length bound. *)
