(** Signature alphabet for determinisation.

    Automaton transitions are labeled with edge {e sets} (selectors), so the
    input alphabet [E] is unbounded from the automaton's point of view. For
    subset construction we quotient edges by their {e signature}: the
    bitmask recording which of the expression's distinct selectors match the
    edge. Two edges with equal signatures (and equal adjacency to the
    previous edge) are indistinguishable to the automaton, so the signature
    space — at most [2^k] for [k] distinct selectors, in practice the
    handful realised by a graph — is a sound finite alphabet. *)

open Mrpa_graph
open Mrpa_core

type t

val of_expr : Expr.t -> t
(** Collect the distinct selectors of an expression. Raises
    [Invalid_argument] beyond 62 distinct selectors (mask is an [int]). *)

val of_selectors : Selector.t list -> t
(** Build from an explicit selector list (duplicates collapsed, order of
    first occurrence kept). Same 62-selector limit. Used to give two
    expressions a {e shared} alphabet for equivalence checking. *)

val n_selectors : t -> int

val selector_index : t -> Selector.t -> int
(** Bit position of a selector that occurs in the expression. Raises
    [Not_found] otherwise. *)

val mask_of_edge : t -> Edge.t -> int
(** The edge's signature: bit [i] is set iff selector [i] matches. *)

val masks_of_graph : t -> Digraph.t -> int list
(** Distinct signatures realised by the graph's edges, in increasing order,
    always including [0] (the "matches nothing" letter, which exists for any
    edge outside every selector). *)
