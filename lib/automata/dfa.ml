open Mrpa_graph

let successors (a : Glushkov.t) p =
  if p = 0 then List.map (fun q -> (q, Glushkov.Free)) a.first
  else a.follow.(p)

(* Position-set transition on a quotient letter (signature mask, adjacency
   bit). [pos_sig.(q)] is the bit index of position [q]'s selector. *)
let step_mask (a : Glushkov.t) pos_sig config mask adj =
  let next = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (q, kind) ->
          if
            (kind = Glushkov.Free || adj)
            && mask land (1 lsl pos_sig.(q)) <> 0
            && not (List.mem q !next)
          then next := q :: !next)
        (successors a p))
    config;
  List.sort Int.compare !next

let accepting_config (a : Glushkov.t) config =
  List.exists (fun p -> if p = 0 then a.nullable else a.last.(p)) config

let pos_signature_indices (a : Glushkov.t) alpha =
  Array.init (a.n_positions + 1) (fun p ->
      if p = 0 then 0 else Edge_signature.selector_index alpha a.selector_of.(p))

type t = {
  glushkov : Glushkov.t;
  alpha : Edge_signature.t;
  pos_sig : int array;
  masks : int array;
  mask_ids : (int, int) Hashtbl.t;
  trans : int array array; (* trans.(state).(mask_id * 2 + adj_bit) *)
  accept : bool array;
  members : int list array;
}

let create ?alpha g expr =
  let glushkov = Glushkov.build expr in
  let alpha =
    match alpha with Some a -> a | None -> Edge_signature.of_expr expr
  in
  let pos_sig = pos_signature_indices glushkov alpha in
  let masks = Array.of_list (Edge_signature.masks_of_graph alpha g) in
  let mask_ids = Hashtbl.create (Array.length masks) in
  Array.iteri (fun i m -> Hashtbl.add mask_ids m i) masks;
  let n_letters = 2 * Array.length masks in
  let state_ids : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let states = ref [] in
  let n_states = ref 0 in
  let pending = Queue.create () in
  let intern config =
    match Hashtbl.find_opt state_ids config with
    | Some id -> id
    | None ->
      let id = !n_states in
      incr n_states;
      Hashtbl.add state_ids config id;
      states := config :: !states;
      Queue.add (id, config) pending;
      id
  in
  let initial = intern [ 0 ] in
  assert (initial = 0);
  let trans_acc = ref [] in
  while not (Queue.is_empty pending) do
    let _, config = Queue.pop pending in
    let row = Array.make n_letters 0 in
    Array.iteri
      (fun mi mask ->
        let next_f = step_mask glushkov pos_sig config mask false in
        let next_t = step_mask glushkov pos_sig config mask true in
        row.(2 * mi) <- intern next_f;
        row.((2 * mi) + 1) <- intern next_t)
      masks;
    trans_acc := row :: !trans_acc
  done;
  let members = Array.of_list (List.rev !states) in
  (* trans rows were produced in discovery order *)
  let trans = Array.of_list (List.rev !trans_acc) in
  let accept = Array.map (accepting_config glushkov) members in
  { glushkov; alpha; pos_sig; masks; mask_ids; trans; accept; members }

let n_states t = Array.length t.trans
let n_letters t = 2 * Array.length t.masks

let accepts t path =
  let edges = Path.to_array path in
  let n = Array.length edges in
  (* Dynamic fallback: continue on raw position sets once a signature not in
     the construction alphabet is met. *)
  let rec run_dynamic config prev i =
    if config = [] then false
    else if i >= n then accepting_config t.glushkov config
    else
      let mask = Edge_signature.mask_of_edge t.alpha edges.(i) in
      let adj = match prev with None -> true | Some pe -> Edge.adjacent pe edges.(i) in
      run_dynamic (step_mask t.glushkov t.pos_sig config mask adj) (Some edges.(i)) (i + 1)
  in
  let rec run state prev i =
    if i >= n then t.accept.(state)
    else
      let mask = Edge_signature.mask_of_edge t.alpha edges.(i) in
      match Hashtbl.find_opt t.mask_ids mask with
      | None -> run_dynamic t.members.(state) prev i
      | Some mi ->
        let adj =
          match prev with None -> true | Some pe -> Edge.adjacent pe edges.(i)
        in
        let letter = (2 * mi) + if adj then 1 else 0 in
        run t.trans.(state).(letter) (Some edges.(i)) (i + 1)
  in
  run 0 None 0

(* Walk the synchronous product of the two DFAs (shared alphabet); [bad]
   decides which accept-flag combinations refute the relation under test. *)
let product_check ~bad g e1 e2 =
  let alpha =
    Edge_signature.of_selectors
      (Mrpa_core.Expr.selectors e1 @ Mrpa_core.Expr.selectors e2)
  in
  let d1 = create ~alpha g e1 in
  let d2 = create ~alpha g e2 in
  let letters = n_letters d1 in
  if letters <> n_letters d2 then false
  else begin
    let seen = Hashtbl.create 64 in
    let rec walk pairs =
      match pairs with
      | [] -> true
      | (s1, s2) :: rest ->
        if Hashtbl.mem seen (s1, s2) then walk rest
        else begin
          Hashtbl.add seen (s1, s2) ();
          if bad d1.accept.(s1) d2.accept.(s2) then false
          else begin
            let next = ref rest in
            for l = 0 to letters - 1 do
              next := (d1.trans.(s1).(l), d2.trans.(s2).(l)) :: !next
            done;
            walk !next
          end
        end
    in
    walk [ (0, 0) ]
  end

let equivalent g e1 e2 = product_check ~bad:(fun a1 a2 -> a1 <> a2) g e1 e2
let included g e1 e2 = product_check ~bad:(fun a1 a2 -> a1 && not a2) g e1 e2

let minimize t =
  let n = n_states t in
  let letters = n_letters t in
  if n = 0 then t
  else begin
    let class_of = Array.map (fun a -> if a then 1 else 0) t.accept in
    let n_classes = ref 2 in
    let changed = ref true in
    while !changed do
      let table : (int * int list, int) Hashtbl.t = Hashtbl.create n in
      let next_class = Array.make n 0 in
      let count = ref 0 in
      for s = 0 to n - 1 do
        let key =
          ( class_of.(s),
            List.init letters (fun l -> class_of.(t.trans.(s).(l))) )
        in
        let c =
          match Hashtbl.find_opt table key with
          | Some c -> c
          | None ->
            let c = !count in
            incr count;
            Hashtbl.add table key c;
            c
        in
        next_class.(s) <- c
      done;
      changed := !count <> !n_classes;
      n_classes := !count;
      Array.blit next_class 0 class_of 0 n
    done;
    (* Renumber so the class of the old initial state is 0. *)
    let k = !n_classes in
    let perm = Array.make k (-1) in
    let next = ref 0 in
    let renum c =
      if perm.(c) < 0 then begin
        perm.(c) <- !next;
        incr next
      end;
      perm.(c)
    in
    let init_class = renum class_of.(0) in
    assert (init_class = 0);
    for s = 0 to n - 1 do
      ignore (renum class_of.(s))
    done;
    let rep = Array.make k (-1) in
    for s = n - 1 downto 0 do
      rep.(perm.(class_of.(s))) <- s
    done;
    let trans =
      Array.init k (fun c ->
          let s = rep.(c) in
          Array.init letters (fun l -> perm.(class_of.(t.trans.(s).(l)))))
    in
    let accept = Array.init k (fun c -> t.accept.(rep.(c))) in
    let members = Array.init k (fun c -> t.members.(rep.(c))) in
    { t with trans; accept; members }
  end

let pp fmt t =
  Format.fprintf fmt "dfa: %d states, %d letters (%d signatures)" (n_states t)
    (n_letters t) (Array.length t.masks)
