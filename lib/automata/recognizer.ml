open Mrpa_graph
open Mrpa_core

(* --- Cubic matcher -------------------------------------------------- *)

(* Flatten the expression into an int-indexed node table so segment results
   can be memoised on (node, start, stop). *)
type node =
  | NEmpty
  | NEps
  | NSel of Selector.t
  | NUnion of int * int
  | NJoin of int * int
  | NProd of int * int
  | NStar of int

let index_expr r =
  let nodes = ref [] in
  let count = ref 0 in
  let push n =
    nodes := n :: !nodes;
    let id = !count in
    incr count;
    id
  in
  let rec go : Expr.t -> int = function
    | Empty -> push NEmpty
    | Epsilon -> push NEps
    | Sel s -> push (NSel s)
    | Union (a, b) ->
      let ia = go a in
      let ib = go b in
      push (NUnion (ia, ib))
    | Join (a, b) ->
      let ia = go a in
      let ib = go b in
      push (NJoin (ia, ib))
    | Product (a, b) ->
      let ia = go a in
      let ib = go b in
      push (NProd (ia, ib))
    | Star a ->
      let ia = go a in
      push (NStar ia)
  in
  let root = go r in
  (Array.of_list (List.rev !nodes), root)

let cubic_staged r =
  let nodes, root = index_expr r in
  fun path ->
    let edges = Path.to_array path in
    let n = Array.length edges in
    let memo : (int * int * int, bool) Hashtbl.t = Hashtbl.create 64 in
    (* Is concatenating segment [i,k) before segment [k,j) legal under the
       join side condition? Vacuous when either side is empty. *)
    let joint_boundary i k j =
      k = i || k = j || Edge.adjacent edges.(k - 1) edges.(k)
    in
    let rec matches id i j =
      match Hashtbl.find_opt memo (id, i, j) with
      | Some b -> b
      | None ->
        let b = compute id i j in
        Hashtbl.add memo (id, i, j) b;
        b
    and compute id i j =
      match nodes.(id) with
      | NEmpty -> false
      | NEps -> i = j
      | NSel s -> j = i + 1 && Selector.matches s edges.(i)
      | NUnion (a, b) -> matches a i j || matches b i j
      | NJoin (a, b) ->
        let rec try_split k =
          k <= j
          && ((joint_boundary i k j && matches a i k && matches b k j)
             || try_split (k + 1))
        in
        try_split i
      | NProd (a, b) ->
        let rec try_split k =
          k <= j && ((matches a i k && matches b k j) || try_split (k + 1))
        in
        try_split i
      | NStar a ->
        i = j
        ||
        (* peel one non-empty iteration off the front; the boundary to the
           remaining iterations is a join boundary. *)
        let rec try_split k =
          k <= j
          && ((joint_boundary i k j && matches a i k && matches id k j)
             || try_split (k + 1))
        in
        try_split (i + 1)
    in
    matches root 0 n

let cubic r path = cubic_staged r path

(* --- NFA ------------------------------------------------------------ *)

let make_nfa r =
  let a = Glushkov.build r in
  fun path -> Glushkov.accepts a path

let nfa r path = make_nfa r path

(* --- Dispatch ------------------------------------------------------- *)

type strategy = Cubic | Nfa | Lazy_dfa | Eager_dfa | Min_dfa

let make ?(strategy = Nfa) ?graph r =
  match strategy with
  | Cubic -> cubic_staged r
  | Nfa -> make_nfa r
  | Lazy_dfa ->
    let d = Lazy_dfa.create r in
    fun path -> Lazy_dfa.accepts d path
  | Eager_dfa -> (
    match graph with
    | None -> invalid_arg "Recognizer.make: Eager_dfa needs ~graph"
    | Some g ->
      let d = Dfa.create g r in
      fun path -> Dfa.accepts d path)
  | Min_dfa -> (
    match graph with
    | None -> invalid_arg "Recognizer.make: Min_dfa needs ~graph"
    | Some g ->
      let d = Dfa.minimize (Dfa.create g r) in
      fun path -> Dfa.accepts d path)

let strategies =
  [
    ("cubic", Cubic);
    ("nfa", Nfa);
    ("lazy-dfa", Lazy_dfa);
    ("eager-dfa", Eager_dfa);
    ("min-dfa", Min_dfa);
  ]
