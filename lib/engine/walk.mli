(** A fluent, Gremlin-style traversal pipeline over the algebra.

    The paper frames its algebra as the foundation of a "multi-relational
    graph traversal engine"; the engine surface practitioners know from
    that lineage (Gremlin/TinkerPop) is a left-to-right pipeline of steps.
    This module provides that surface on top of {!Mrpa_graph}: a walk is a
    lazy stream of {e traversers} — (current vertex, path walked so far) —
    and each combinator transforms the stream.

    {v
Walk.(start g [alice] |> out ~label:knows |> out ~label:works_for
      |> dedup |> vertices)
    v}

    Walks are {e single-use}: stateful steps ([dedup], [limit]) consume the
    stream. Build a fresh walk per query (construction is cheap; nothing
    traverses until a terminal step forces it).

    Traversal through in-edges ([in_], [both]) records the traversed edge
    as stored, so the accumulated path may be disjoint in the §II sense —
    the path still tells you exactly which edges were crossed (and
    {!Mrpa_graph.Path.label_word} still answers "via which relations"),
    which is the point of the ternary representation. *)

open Mrpa_graph
open Mrpa_core

type t

(** {1 Sources} *)

val start : Digraph.t -> Vertex.t list -> t
(** One traverser per listed vertex, each with the empty path. *)

val start_all : Digraph.t -> t
(** One traverser per vertex of the graph. *)

(** {1 Movement steps} *)

val out : ?label:Label.t -> t -> t
(** Follow every out-edge (optionally restricted to one relation type);
    the traverser forks per edge. *)

val in_ : ?label:Label.t -> t -> t
(** Follow in-edges backwards. *)

val both : ?label:Label.t -> t -> t
(** {!out} and {!in_} together. *)

val step : Selector.t -> t -> t
(** Follow out-edges matched by an arbitrary selector — the general §III
    restricted step. *)

(** {1 Filters and modulators} *)

val filter : (Vertex.t -> bool) -> t -> t
(** Keep traversers whose current vertex satisfies the predicate. *)

val filter_path : (Path.t -> bool) -> t -> t

val has_label_word : Label.t list -> t -> t
(** Keep traversers whose path label ω′ equals the given word. *)

val simple : t -> t
(** Drop traversers that revisit a vertex ({!Mrpa_graph.Path.is_simple}). *)

val dedup : t -> t
(** First traverser per current vertex wins (stateful). *)

val limit : int -> t -> t

val repeat : int -> (t -> t) -> t -> t
(** [repeat n f w]: apply the step pipeline [f] exactly [n] times. *)

val emit : (t -> t) -> max_depth:int -> t -> t
(** Breadth-style iteration with emission: traversers after 0, 1, …,
    [max_depth] applications of [f] are all part of the stream (depth
    order). *)

(** {1 Terminal steps} *)

val vertices : t -> Vertex.t list
(** Current vertices, in stream order (duplicates preserved — use {!dedup}
    upstream). *)

val paths : t -> Path.t list
val count : t -> int
val to_seq : t -> (Vertex.t * Path.t) Seq.t

val path_set : t -> Path_set.t
(** The walked paths as a {!Mrpa_core.Path_set} — back into the algebra. *)
