(** Structured error and verdict taxonomy for the execution pipeline.

    Every governed run ends in a {!verdict}: either the full denotation was
    produced, or the run was stopped early for a {!reason} and the result is
    a sound partial answer. The taxonomy is deliberately closed — the CLI
    exit-code policy, the JSON renderer and the metrics counters all switch
    on it, so adding a reason is a cross-cutting change by design. *)

open Mrpa_core

type reason =
  | Deadline  (** the wall-clock deadline passed ({!Budget}). *)
  | Fuel  (** the transition-step budget is exhausted. *)
  | Memory  (** the live/banked path budget was hit. *)
  | Cancelled  (** the cancellation token fired (e.g. Ctrl-C). *)
  | Limit  (** a LIMIT clause stopped the run at [k] paths. *)
  | Shard_unavailable
      (** a sharded deployment lost a shard mid-request: the answer is the
          sound union of the shards that did respond ({!Mrpa_server.Router});
          the missing shard names travel in the response, not here. *)

type verdict =
  | Complete  (** the result is the full (restricted) denotation. *)
  | Partial of reason
      (** the result is a sound subset; [reason] says what stopped it. *)

val of_guard : Guard.reason -> reason
(** Embed the backend-level abort reasons; [Limit] has no guard analogue
    (limits are pushed down, not guarded). *)

val reason_name : reason -> string
(** ["deadline" | "fuel" | "memory" | "cancelled" | "limit" |
    "shard_unavailable"]. *)

val reason_of_name : string -> reason option
(** Inverse of {!reason_name} (used by the CLI's fault-injection flag). *)

val verdict_name : verdict -> string
(** ["complete"] or ["partial:<reason>"]. *)

val pp_verdict : Format.formatter -> verdict -> unit

val is_partial : verdict -> bool

(** {1 Exit-code policy}

    One policy for every [mrpa] subcommand:
    - {!exit_ok} [= 0] — success (for boolean subcommands: the positive
      verdict — recognized, equivalent);
    - {!exit_user_error} [= 1] — a user/input error (bad query, unknown
      vertex, malformed graph file, statically empty query), or a boolean
      subcommand's negative verdict (rejected, different — like [grep]'s
      no-match);
    - {!exit_internal_error} [= 2] — a bug: an unexpected exception escaped
      the engine;
    - {!exit_partial} [= 3] — the run succeeded but produced a partial
      result under a budget or limit. *)

val exit_ok : int
val exit_user_error : int
val exit_internal_error : int
val exit_partial : int

val exit_code : verdict -> int
(** {!exit_ok} for [Complete], {!exit_partial} for [Partial _]. *)
