open Mrpa_core

type result = { paths : Path_set.t; plan : Plan.t; stats : Eval.stats }

let default_max_length = 8

let query_expr ?strategy ?simple ?(max_length = default_max_length) ?limit g
    expr =
  let plan = Optimizer.plan ?strategy ?simple ~max_length g expr in
  let paths, stats =
    match limit with
    | None -> Eval.run g plan
    | Some limit -> Eval.run_limited g plan ~limit
  in
  { paths; plan; stats }

let query ?strategy ?simple ?max_length ?limit g text =
  match Parser.parse g text with
  | Error e -> Error (Parser.render_error ~source:text e)
  | Ok expr -> Ok (query_expr ?strategy ?simple ?max_length ?limit g expr)

let query_exn ?strategy ?simple ?max_length ?limit g text =
  match query ?strategy ?simple ?max_length ?limit g text with
  | Ok r -> r
  | Error message -> failwith message

let count_expr ?(max_length = default_max_length) g expr =
  let optimized, _ = Optimizer.simplify expr in
  Mrpa_automata.Counting.count g optimized ~max_length

let count ?max_length g text =
  match Parser.parse g text with
  | Error e -> Error (Parser.render_error ~source:text e)
  | Ok expr -> Ok (count_expr ?max_length g expr)

let equivalent g text1 text2 =
  match (Parser.parse g text1, Parser.parse g text2) with
  | Error e, _ -> Error (Parser.render_error ~source:text1 e)
  | _, Error e -> Error (Parser.render_error ~source:text2 e)
  | Ok e1, Ok e2 ->
    let e1', _ = Optimizer.simplify e1 in
    let e2', _ = Optimizer.simplify e2 in
    Ok (Mrpa_automata.Dfa.equivalent g e1' e2')

let explain ?(max_length = default_max_length) g text =
  match Parser.parse g text with
  | Error e -> Error (Parser.render_error ~source:text e)
  | Ok expr ->
    let plan = Optimizer.plan ~max_length g expr in
    Ok (Format.asprintf "%a" (Plan.pp_named g) plan)

let lint ?signature g text =
  match Parser.parse_spanned g text with
  | Error e -> Error (Parser.render_error ~source:text e)
  | Ok spanned -> Ok (Mrpa_lint.Lint.analyze ?signature g spanned)
