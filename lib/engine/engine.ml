open Mrpa_core

type result = {
  paths : Path_set.t;
  plan : Plan.t;
  verdict : Err.verdict;
  stats : Eval.stats;
}

let default_max_length = 8

let query_plan ?limit ?budget g plan =
  let o = Eval.run_governed ?limit ?budget g plan in
  { paths = o.Eval.paths; plan; verdict = o.Eval.verdict; stats = o.Eval.stats }

let query_expr ?strategy ?simple ?stats ?(max_length = default_max_length)
    ?limit ?budget g expr =
  let plan = Optimizer.plan ?strategy ?simple ?stats ~max_length g expr in
  query_plan ?limit ?budget g plan

let query ?strategy ?simple ?stats ?max_length ?limit ?budget g text =
  match Parser.parse g text with
  | Error e -> Error (Parser.render_error ~source:text e)
  | Ok expr ->
    Ok (query_expr ?strategy ?simple ?stats ?max_length ?limit ?budget g expr)

let query_exn ?strategy ?simple ?stats ?max_length ?limit ?budget g text =
  match query ?strategy ?simple ?stats ?max_length ?limit ?budget g text with
  | Ok r -> r
  | Error message -> failwith message

(* The profiled pipeline runs every stage — including the static analyzer,
   which [query] skips — under one metrics collector, so the profile shows
   where a query's time goes end to end. *)
let query_profiled ?strategy ?simple ?stats ?(max_length = default_max_length)
    ?limit ?budget g text =
  let m = Metrics.create () in
  match Metrics.time m "parse" (fun () -> Parser.parse_spanned g text) with
  | Error e -> Error (Parser.render_error ~source:text e)
  | Ok spanned ->
    let expr = Spanned.strip spanned in
    let diags =
      Metrics.time m "lint" (fun () ->
          Mrpa_lint.Lint.analyze ?stats ~max_length g spanned)
    in
    Metrics.set m "lint.findings" (List.length diags);
    let plan =
      Metrics.time m "optimize" (fun () ->
          Optimizer.plan ?strategy ?simple ?stats ~max_length g expr)
    in
    let paths, verdict =
      Metrics.time m "execute" (fun () ->
          Eval.execute_verdict ?limit ~metrics:m ?budget g plan)
    in
    let elapsed_s =
      match Metrics.stage_ns m "execute" with
      | Some ns -> Int64.to_float ns /. 1e9
      | None -> 0.0
    in
    let stats = { Eval.paths = Path_set.cardinal paths; elapsed_s } in
    Ok ({ paths; plan; verdict; stats }, m)

let count_expr ?(max_length = default_max_length) ?budget g expr =
  let optimized, _ = Optimizer.simplify expr in
  let guard =
    match budget with None -> Guard.none | Some b -> Budget.guard b
  in
  let n = Mrpa_automata.Counting.count ~guard g optimized ~max_length in
  (n, Budget.verdict ~returned:n budget)

(* Counting over an already-built plan reuses its optimised expression and
   length bound — the server's plan cache hands the same [Plan.t] to both
   the query and count verbs. *)
let count_plan ?budget g (plan : Plan.t) =
  let guard =
    match budget with None -> Guard.none | Some b -> Budget.guard b
  in
  let n =
    Mrpa_automata.Counting.count ~guard g plan.Plan.optimized
      ~max_length:plan.Plan.max_length
  in
  (n, Budget.verdict ~returned:n budget)

let count_governed ?max_length ?budget g text =
  match Parser.parse g text with
  | Error e -> Error (Parser.render_error ~source:text e)
  | Ok expr -> Ok (count_expr ?max_length ?budget g expr)

let count ?max_length g text =
  Stdlib.Result.map fst (count_governed ?max_length g text)

let equivalent g text1 text2 =
  match (Parser.parse g text1, Parser.parse g text2) with
  | Error e, _ -> Error (Parser.render_error ~source:text1 e)
  | _, Error e -> Error (Parser.render_error ~source:text2 e)
  | Ok e1, Ok e2 ->
    let e1', _ = Optimizer.simplify e1 in
    let e2', _ = Optimizer.simplify e2 in
    Ok (Mrpa_automata.Dfa.equivalent g e1' e2')

let explain ?stats ?(max_length = default_max_length) g text =
  match Parser.parse g text with
  | Error e -> Error (Parser.render_error ~source:text e)
  | Ok expr ->
    let plan = Optimizer.plan ?stats ~max_length g expr in
    Ok (Format.asprintf "%a" (Plan.pp_named g) plan)

let lint ?signature ?stats ?(max_length = default_max_length) ?fuel
    ?deadline_ms g text =
  match Parser.parse_spanned g text with
  | Error e -> Error (Parser.render_error ~source:text e)
  | Ok spanned ->
    Ok (Mrpa_lint.Lint.analyze ?signature ?stats ~max_length ?fuel ?deadline_ms g spanned)
