open Mrpa_graph
open Mrpa_core

type traverser = { vertex : Vertex.t; rev_edges : Edge.t list }

type t = { graph : Digraph.t; stream : traverser Seq.t }

let start g vs =
  {
    graph = g;
    stream = List.to_seq (List.map (fun v -> { vertex = v; rev_edges = [] }) vs);
  }

let start_all g = start g (Digraph.vertices g)

let fork w edges_of continue =
  {
    w with
    stream =
      Seq.concat_map
        (fun tr ->
          Seq.map (fun e -> continue tr e) (List.to_seq (edges_of tr.vertex)))
        w.stream;
  }

let out ?label w =
  let edges_of v =
    let es = Digraph.out_edges w.graph v in
    match label with
    | None -> es
    | Some l -> List.filter (fun e -> Label.equal (Edge.label e) l) es
  in
  fork w edges_of (fun tr e ->
      { vertex = Edge.head e; rev_edges = e :: tr.rev_edges })

let in_ ?label w =
  let edges_of v =
    let es = Digraph.in_edges w.graph v in
    match label with
    | None -> es
    | Some l -> List.filter (fun e -> Label.equal (Edge.label e) l) es
  in
  fork w edges_of (fun tr e ->
      { vertex = Edge.tail e; rev_edges = e :: tr.rev_edges })

let both ?label w =
  let edges_of v =
    let outs =
      List.map (fun e -> (e, Edge.head e)) (Digraph.out_edges w.graph v)
    in
    let ins =
      List.filter_map
        (fun e ->
          (* avoid walking a loop twice *)
          if Edge.is_loop e then None else Some (e, Edge.tail e))
        (Digraph.in_edges w.graph v)
    in
    let all = outs @ ins in
    match label with
    | None -> all
    | Some l -> List.filter (fun (e, _) -> Label.equal (Edge.label e) l) all
  in
  {
    w with
    stream =
      Seq.concat_map
        (fun tr ->
          Seq.map
            (fun (e, next) -> { vertex = next; rev_edges = e :: tr.rev_edges })
            (List.to_seq (edges_of tr.vertex)))
        w.stream;
  }

let step sel w =
  fork w
    (fun v -> Selector.select_out w.graph sel v)
    (fun tr e -> { vertex = Edge.head e; rev_edges = e :: tr.rev_edges })

let filter p w = { w with stream = Seq.filter (fun tr -> p tr.vertex) w.stream }

let path_of tr = Path.of_edges (List.rev tr.rev_edges)

let filter_path p w =
  { w with stream = Seq.filter (fun tr -> p (path_of tr)) w.stream }

let has_label_word word w =
  filter_path (fun p -> Path.label_word p = word) w

let simple w = filter_path Path.is_simple w

let dedup w =
  let seen = Vertex.Tbl.create 32 in
  {
    w with
    stream =
      Seq.filter
        (fun tr ->
          if Vertex.Tbl.mem seen tr.vertex then false
          else begin
            Vertex.Tbl.add seen tr.vertex ();
            true
          end)
        w.stream;
  }

let limit n w = { w with stream = Seq.take n w.stream }

let repeat n f w =
  if n < 0 then invalid_arg "Walk.repeat: negative count";
  let rec go k w = if k = 0 then w else go (k - 1) (f w) in
  go n w

let emit f ~max_depth w =
  if max_depth < 0 then invalid_arg "Walk.emit: negative depth";
  (* depth-ordered concatenation of the iterates; the source stream is
     replayed per depth, which is safe because movement steps are pure
     (only dedup/limit are stateful, and they sit downstream of emit in a
     well-formed pipeline). *)
  let rec layers k w acc = if k = 0 then List.rev acc else layers (k - 1) (f w) (w :: acc) in
  let all = layers (max_depth + 1) w [] in
  {
    w with
    stream = Seq.concat (List.to_seq (List.map (fun w' -> w'.stream) all));
  }

let to_seq w = Seq.map (fun tr -> (tr.vertex, path_of tr)) w.stream
let vertices w = List.of_seq (Seq.map (fun tr -> tr.vertex) w.stream)
let paths w = List.of_seq (Seq.map path_of w.stream)
let count w = Seq.length w.stream

let path_set w =
  Seq.fold_left
    (fun acc tr -> Path_set.union acc (Path_set.singleton (path_of tr)))
    Path_set.empty w.stream
