(** Rendering expressions back into parseable query text.

    [parse g (expr g e)] always succeeds and denotes the same path set as
    [e] over [g]; for expressions the parser itself can produce, the
    round-trip is {e structural} identity (property-tested both ways).
    Graph-relative because names must be resolved and because selector
    forms the grammar cannot spell (intersections, differences) are
    rendered as their explicit edge sets over the graph's universe. *)

open Mrpa_graph
open Mrpa_core

val expr : Digraph.t -> Expr.t -> string
(** Parseable text for an expression. *)

val selector : Digraph.t -> Selector.t -> string
(** Parseable text for one selector atom. *)
