(** Resource governance for query execution.

    A budget bundles every way a production engine bounds a run:

    - a {e wall-clock deadline}, measured on the monotonic clock
      ({!Metrics.now_ns}) so NTP slews can neither extend nor shorten it;
    - a {e fuel} counter — work units across whichever backend runs:
      path-at-a-time backends charge one unit per transition step, and the
      set-at-a-time stack machine charges the cardinality of the set each
      transition processes, so a unit is roughly "one path moved one step"
      everywhere;
    - a {e memory} budget — the maximum number of live/banked paths (or DP
      configurations) the run may hold at once;
    - a {e cooperative cancellation token} ({!cancel}), safe to fire from a
      signal handler or another thread;
    - deterministic {e fault injection} ({!with_fault_injection}) so tests
      can exercise every abort path without timing flakiness.

    A budget is consumed by handing {!guard} to an evaluator: the guard
    polls at the evaluator's checkpoints, charges fuel, compares the clock
    and the live count, and raises {!Mrpa_core.Guard.Abort} when any bound
    is crossed. The budget records which bound fired ({!tripped}); {!Eval}
    turns that into an {!Err.verdict} and the backends' banked partial
    answers into a graceful result.

    Budgets are single-use: create one per run. Once a bound trips, every
    further poll re-raises, which is what lets nested evaluator loops
    unwind quickly — don't share a tripped budget with a fresh run. *)

open Mrpa_core

type t

val create :
  ?deadline_ms:float -> ?fuel:int -> ?max_live:int -> unit -> t
(** A budget starting now. [deadline_ms] is a duration from now (on the
    monotonic clock), not an absolute time; [fuel] is the total checkpoint
    cost the run may spend; [max_live] is the largest live/banked path
    count any single checkpoint may report. Omitted components are
    unbounded. Raises [Invalid_argument] on negative values. *)

val unlimited : unit -> t
(** [create ()]: no bounds, but still cancellable — the cheapest way to get
    Ctrl-C support. *)

val with_fault_injection : at:int -> Guard.reason -> t -> t
(** [with_fault_injection ~at reason b] arms [b] to trip with [reason] at
    its [at]-th checkpoint poll (1-based), regardless of the real clock,
    fuel or memory state. Deterministic by construction: backends poll at
    fixed points, so the abort lands at the same place on every run. The
    budget is mutated and returned for chaining. Raises [Invalid_argument]
    if [at < 1]. *)

val cancel : t -> unit
(** Fire the cancellation token. Idempotent; safe from a signal handler or
    another thread (it only sets a flag — the run aborts at its next
    checkpoint). *)

val cancelled : t -> bool

val guard : t -> Guard.t
(** The checkpoint callback to hand to evaluators. All guards of one budget
    share its accounting. *)

val tripped : t -> Guard.reason option
(** Which bound aborted the run, if any. *)

val checkpoints : t -> int
(** Checkpoint polls observed so far. *)

val fuel_used : t -> int
(** Total cost charged so far. *)

val verdict : ?limit:int -> returned:int -> t option -> Err.verdict
(** The verdict for a run that returned [returned] distinct paths under
    this budget (pass [None] for an ungoverned run) and an optional LIMIT
    of [limit] paths. A tripped bound wins; otherwise a met limit reports
    [Partial Limit] (conservative: the denotation may end exactly at the
    limit, but no path was provably dropped only when the limit was not
    reached); otherwise [Complete]. *)
