(** Machine-readable rendering of engine results (JSON).

    Hand-rolled writer — the only JSON this library needs is output, and
    keeping the dependency set to the stock toolchain matters more than a
    parser. Strings are escaped per RFC 8259 (control characters, quotes,
    backslash; non-ASCII bytes are passed through as UTF-8). *)

open Mrpa_graph
open Mrpa_core

val escape_string : string -> string
(** The JSON string literal (with surrounding quotes) for an OCaml
    string. *)

val path_json : Digraph.t -> Path.t -> string
(** A path as
    [{"edges": [{"tail": …, "label": …, "head": …}, …], "label_word": […]}]. *)

val paths_json : Digraph.t -> Path_set.t -> string
(** A path set as a JSON array, in set order. *)

val result_json : Digraph.t -> Engine.result -> string
(** A full query result:
    [{"paths": […], "count": n, "elapsed_ms": t, "strategy": s,
      "verdict": "complete" | "partial:<reason>", "rewrites": […]}]. *)

val tuples_json : Digraph.t -> head:string list -> Vertex.t list list -> string
(** CRPQ answers as an array of objects keyed by head variable. *)
