(** The multi-relational graph traversal engine façade: parse → optimise →
    execute. This is the "traversal engine" the paper positions the algebra
    as a foundation for (§I, §V). *)

open Mrpa_graph
open Mrpa_core

type result = {
  paths : Path_set.t;
  plan : Plan.t;
  verdict : Err.verdict;
      (** [Complete], or [Partial reason] when a budget bound or a limit
          stopped the run and [paths] is a sound subset of the denotation. *)
  stats : Eval.stats;
}

val query :
  ?strategy:Plan.strategy ->
  ?simple:bool ->
  ?stats:Stat.profile ->
  ?max_length:int ->
  ?limit:int ->
  ?budget:Budget.t ->
  Digraph.t ->
  string ->
  (result, string) Stdlib.result
(** Run a textual query (grammar in {!Parser}) against a graph.
    [max_length] (default 8) bounds star unrolling; [limit] stops after that
    many distinct paths; [simple] restricts to simple paths (ref. \[8\]).
    [budget] governs the run ({!Budget}): when a deadline, fuel, memory
    bound or cancellation trips, the run stops at the next checkpoint and
    the result carries a partial verdict instead of failing. Parse errors
    are returned as [Error] with offset information rendered in. *)

val query_exn :
  ?strategy:Plan.strategy ->
  ?simple:bool ->
  ?stats:Stat.profile ->
  ?max_length:int ->
  ?limit:int ->
  ?budget:Budget.t ->
  Digraph.t ->
  string ->
  result
(** Like {!query}; raises [Failure] on error. *)

val query_profiled :
  ?strategy:Plan.strategy ->
  ?simple:bool ->
  ?stats:Stat.profile ->
  ?max_length:int ->
  ?limit:int ->
  ?budget:Budget.t ->
  Digraph.t ->
  string ->
  (result * Metrics.t, string) Stdlib.result
(** Like {!query}, but the whole pipeline — parse, lint (which {!query}
    skips), optimize, execute — runs under a fresh {!Metrics} collector
    whose stage timings and backend counters are returned alongside the
    result: the engine's EXPLAIN ANALYZE. [stats.elapsed_s] is the execute
    stage's time. Governed runs additionally record [budget.*] counters. *)

val query_expr :
  ?strategy:Plan.strategy ->
  ?simple:bool ->
  ?stats:Stat.profile ->
  ?max_length:int ->
  ?limit:int ->
  ?budget:Budget.t ->
  Digraph.t ->
  Expr.t ->
  result
(** Programmatic entry point, skipping the parser. *)

val query_plan : ?limit:int -> ?budget:Budget.t -> Digraph.t -> Plan.t -> result
(** Execute an already-built plan, skipping parse and optimise entirely —
    the entry point the server's compiled-plan cache feeds. Equivalent to
    {!query_expr} on [plan.original] with the plan's own strategy,
    max_length and simple flag. *)

val count :
  ?max_length:int -> Digraph.t -> string -> (int, string) Stdlib.result
(** Number of distinct paths the query denotes within the bound, computed
    by {!Mrpa_automata.Counting} — no path set is materialised, so this
    stays cheap where {!query} would build an exponentially large answer. *)

val count_governed :
  ?max_length:int ->
  ?budget:Budget.t ->
  Digraph.t ->
  string ->
  (int * Err.verdict, string) Stdlib.result
(** {!count} under a budget. A tripped bound yields the count accumulated
    over fully completed levels — a sound lower bound — with the partial
    verdict saying which bound fired. *)

val count_expr :
  ?max_length:int -> ?budget:Budget.t -> Digraph.t -> Expr.t -> int * Err.verdict

val count_plan : ?budget:Budget.t -> Digraph.t -> Plan.t -> int * Err.verdict
(** {!count_expr} over a plan's already-optimised expression at the plan's
    length bound — no re-parse, no re-simplify. *)

val equivalent :
  Digraph.t -> string -> string -> (bool, string) Stdlib.result
(** Are two queries equivalent over this graph's edge universe at {e every}
    length (no bound)? Decided symbolically via
    {!Mrpa_automata.Dfa.equivalent} on the optimised forms. *)

val explain :
  ?stats:Stat.profile ->
  ?max_length:int ->
  Digraph.t ->
  string ->
  (string, string) Stdlib.result
(** The plan that {!query} would run — including its cost table — rendered
    as text, without running it. *)

val lint :
  ?signature:Mrpa_lint.Signature.t ->
  ?stats:Stat.profile ->
  ?max_length:int ->
  ?fuel:int ->
  ?deadline_ms:float ->
  Digraph.t ->
  string ->
  (Mrpa_lint.Diagnostic.t list, string) Stdlib.result
(** Statically analyse a textual query against a graph without running it:
    parse with spans, then {!Mrpa_lint.Lint.analyze} (emptiness abstract
    interpretation over the label signature, Glushkov dead-position
    checks, and the {!Mrpa_lint.Cost} cardinality/cost analysis at
    [max_length], default 8). [fuel] / [deadline_ms] enable the L012
    budget-feasibility check. [Error] carries a rendered parse error. Pass
    [?signature] / [?stats] to amortise the graph abstractions across
    queries. *)

val default_max_length : int
