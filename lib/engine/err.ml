open Mrpa_core

type reason = Deadline | Fuel | Memory | Cancelled | Limit | Shard_unavailable
type verdict = Complete | Partial of reason

let of_guard = function
  | Guard.Deadline -> Deadline
  | Guard.Fuel -> Fuel
  | Guard.Memory -> Memory
  | Guard.Cancelled -> Cancelled

let reason_name = function
  | Deadline -> "deadline"
  | Fuel -> "fuel"
  | Memory -> "memory"
  | Cancelled -> "cancelled"
  | Limit -> "limit"
  | Shard_unavailable -> "shard_unavailable"

let reason_of_name = function
  | "deadline" -> Some Deadline
  | "fuel" -> Some Fuel
  | "memory" -> Some Memory
  | "cancelled" -> Some Cancelled
  | "limit" -> Some Limit
  | "shard_unavailable" -> Some Shard_unavailable
  | _ -> None

let verdict_name = function
  | Complete -> "complete"
  | Partial r -> "partial:" ^ reason_name r

let pp_verdict fmt v = Format.pp_print_string fmt (verdict_name v)
let is_partial = function Complete -> false | Partial _ -> true
let exit_ok = 0
let exit_user_error = 1
let exit_internal_error = 2
let exit_partial = 3
let exit_code = function Complete -> exit_ok | Partial _ -> exit_partial
