open Mrpa_core
open Mrpa_automata

type stats = { paths : int; elapsed_s : float }

let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

let execute ?limit g (p : Plan.t) =
  let expr = p.optimized in
  let max_length = p.max_length in
  let truncate s =
    match limit with
    | None -> s
    | Some k ->
      Path_set.of_list (List.filteri (fun i _ -> i < k) (Path_set.elements s))
  in
  let restrict s = if p.simple then Path_set.restrict_simple s else s in
  match p.strategy with
  | Plan.Reference -> truncate (restrict (Expr.denote g ~max_length expr))
  | Plan.Stack_machine ->
    truncate (restrict (Stack_machine.run g expr ~max_length))
  | Plan.Product_bfs ->
    Generator.generate ?max_paths:limit ~simple:p.simple g expr ~max_length

let run g p =
  let paths, elapsed_s = timed (fun () -> execute g p) in
  (paths, { paths = Path_set.cardinal paths; elapsed_s })

let run_seq g (p : Plan.t) =
  match p.strategy with
  | Plan.Product_bfs ->
    Generator.to_seq ~simple:p.simple g (Glushkov.build p.optimized)
      ~max_length:p.max_length
  | Plan.Reference | Plan.Stack_machine ->
    Path_set.elements (execute g p) |> List.to_seq

let run_limited g p ~limit =
  if limit < 0 then invalid_arg "Eval.run_limited: negative limit";
  let paths, elapsed_s = timed (fun () -> execute ~limit g p) in
  (paths, { paths = Path_set.cardinal paths; elapsed_s })
