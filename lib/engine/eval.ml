open Mrpa_core
open Mrpa_automata

type stats = { paths : int; elapsed_s : float }
type outcome = { paths : Path_set.t; verdict : Err.verdict; stats : stats }

(* Monotonic, not wall-clock: timings must survive NTP adjustments. *)
let timed f =
  let t0 = Metrics.now_ns () in
  let result = f () in
  (result, Int64.to_float (Metrics.elapsed_ns ~since:t0) /. 1e9)

let execute_verdict ?limit ?metrics ?budget g (p : Plan.t) =
  let expr = p.optimized in
  let max_length = p.max_length in
  let record f = match metrics with None -> () | Some m -> f m in
  let guard =
    match budget with None -> Guard.none | Some b -> Budget.guard b
  in
  let truncate s =
    match limit with None -> s | Some k -> Path_set.truncate k s
  in
  let restrict s = if p.simple then Path_set.restrict_simple s else s in
  let result =
    match p.strategy with
    | Plan.Reference ->
      let s =
        match budget with
        | None -> Expr.denote g ~max_length expr
        | Some _ ->
          (* The reference denotation is bottom-up: an abort mid-evaluation
             has no sound partial set to salvage. Under a budget we recover
             graceful degradation by iterative deepening on the length
             bound — denote is monotone in [max_length], so the last
             completed round is a sound (and, past round one, non-empty
             wherever the query is satisfiable) subset. Total cost stays
             within a small constant of the direct evaluation because the
             denotation's cost grows at least geometrically with the
             bound. *)
          let best = ref Path_set.empty in
          (try
             for l = 0 to max_length do
               best := Expr.denote ~guard g ~max_length:l expr
             done
           with Guard.Abort _ -> ());
          !best
      in
      record (fun m -> Metrics.set_max m "pathset.peak" (Path_set.cardinal s));
      truncate (restrict s)
    | Plan.Stack_machine ->
      let a = Glushkov.build expr in
      record (fun m ->
          Metrics.set_max m "automaton.positions" (Glushkov.n_states a));
      let st = Stack_machine.fresh_stats () in
      let s =
        Stack_machine.run_automaton ~stats:st ~guard ~simple:p.simple ?limit g
          a ~max_length
      in
      record (fun m ->
          Metrics.incr ~by:st.pops m "stack.pops";
          Metrics.incr ~by:st.pushes m "stack.pushes";
          Metrics.set_max m "stack.levels" st.levels;
          Metrics.set_max m "stack.max_live_branches" st.max_live_branches;
          Metrics.set_max m "stack.peak_stack_paths" st.peak_stack_paths;
          Metrics.set_max m "stack.peak_live_paths" st.peak_live_paths;
          Metrics.set_max m "pathset.peak" st.peak_live_paths);
      truncate s
    | Plan.Product_bfs ->
      let a = Glushkov.build expr in
      record (fun m ->
          Metrics.set_max m "automaton.positions" (Glushkov.n_states a));
      let st = Generator.fresh_stats () in
      let s =
        Generator.generate_automaton ~stats:st ~guard ?max_paths:limit
          ~simple:p.simple g a ~max_length
      in
      record (fun m ->
          Metrics.incr ~by:st.edges_scanned m "bfs.edges_scanned";
          Metrics.incr ~by:st.paths_emitted m "bfs.paths_emitted";
          Metrics.set_max m "bfs.max_depth" st.max_depth;
          Metrics.set_max m "bfs.max_frontier" st.max_frontier;
          Metrics.set_max m "pathset.peak" (Path_set.cardinal s));
      s
  in
  (match budget with
  | None -> ()
  | Some b ->
    record (fun m ->
        Metrics.set m "budget.checkpoints" (Budget.checkpoints b);
        Metrics.set m "budget.fuel_used" (Budget.fuel_used b);
        match Budget.tripped b with
        | Some r -> Metrics.incr m ("budget.stopped." ^ Guard.reason_name r)
        | None -> ()));
  let verdict =
    Budget.verdict ?limit ~returned:(Path_set.cardinal result) budget
  in
  record (fun m -> Metrics.set m "result.paths" (Path_set.cardinal result));
  (result, verdict)

let execute ?limit ?metrics ?budget g p =
  fst (execute_verdict ?limit ?metrics ?budget g p)

let run_governed ?limit ?metrics ?budget g p =
  let (paths, verdict), elapsed_s =
    timed (fun () -> execute_verdict ?limit ?metrics ?budget g p)
  in
  { paths; verdict; stats = { paths = Path_set.cardinal paths; elapsed_s } }

let run ?metrics ?budget g p =
  let o = run_governed ?metrics ?budget g p in
  (o.paths, o.stats)

(* Lazily drop already-seen paths, then stop at [k] distinct ones. The
   returned sequence owns mutable state: consume it once. *)
let distinct_take k seq =
  let seen = ref Path_set.empty in
  seq
  |> Seq.filter (fun p ->
         if Path_set.mem p !seen then false
         else begin
           seen := Path_set.add p !seen;
           true
         end)
  |> Seq.take k

(* End the stream at the first guard abort instead of leaking the
   exception to the consumer's loop. *)
let rec stop_on_abort seq () =
  match seq () with
  | exception Guard.Abort _ -> Seq.Nil
  | Seq.Nil -> Seq.Nil
  | Seq.Cons (x, rest) -> Seq.Cons (x, stop_on_abort rest)

let run_seq ?limit ?budget g (p : Plan.t) =
  (match limit with
  | Some k when k < 0 -> invalid_arg "Eval.run_seq: negative limit"
  | _ -> ());
  match p.strategy with
  | Plan.Product_bfs ->
    let guard =
      match budget with None -> Guard.none | Some b -> Budget.guard b
    in
    let seq =
      stop_on_abort
        (Generator.to_seq ~guard ~simple:p.simple g
           (Glushkov.build p.optimized) ~max_length:p.max_length)
    in
    (match limit with None -> seq | Some k -> distinct_take k seq)
  | Plan.Reference | Plan.Stack_machine ->
    Path_set.elements (execute ?limit ?budget g p) |> List.to_seq

let run_limited ?metrics ?budget g p ~limit =
  if limit < 0 then invalid_arg "Eval.run_limited: negative limit";
  let o = run_governed ~limit ?metrics ?budget g p in
  (o.paths, o.stats)
