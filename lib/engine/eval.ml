open Mrpa_core
open Mrpa_automata

type stats = { paths : int; elapsed_s : float }

(* Monotonic, not wall-clock: timings must survive NTP adjustments. *)
let timed f =
  let t0 = Metrics.now_ns () in
  let result = f () in
  (result, Int64.to_float (Metrics.elapsed_ns ~since:t0) /. 1e9)

let execute ?limit ?metrics g (p : Plan.t) =
  let expr = p.optimized in
  let max_length = p.max_length in
  let record f = match metrics with None -> () | Some m -> f m in
  let truncate s =
    match limit with None -> s | Some k -> Path_set.truncate k s
  in
  let restrict s = if p.simple then Path_set.restrict_simple s else s in
  let result =
    match p.strategy with
    | Plan.Reference ->
      let s = Expr.denote g ~max_length expr in
      record (fun m -> Metrics.set_max m "pathset.peak" (Path_set.cardinal s));
      truncate (restrict s)
    | Plan.Stack_machine ->
      let a = Glushkov.build expr in
      record (fun m ->
          Metrics.set_max m "automaton.positions" (Glushkov.n_states a));
      let st = Stack_machine.fresh_stats () in
      let s =
        Stack_machine.run_automaton ~stats:st ~simple:p.simple ?limit g a
          ~max_length
      in
      record (fun m ->
          Metrics.incr ~by:st.pops m "stack.pops";
          Metrics.incr ~by:st.pushes m "stack.pushes";
          Metrics.set_max m "stack.levels" st.levels;
          Metrics.set_max m "stack.max_live_branches" st.max_live_branches;
          Metrics.set_max m "stack.peak_stack_paths" st.peak_stack_paths;
          Metrics.set_max m "stack.peak_live_paths" st.peak_live_paths;
          Metrics.set_max m "pathset.peak" st.peak_live_paths);
      truncate s
    | Plan.Product_bfs ->
      let a = Glushkov.build expr in
      record (fun m ->
          Metrics.set_max m "automaton.positions" (Glushkov.n_states a));
      let st = Generator.fresh_stats () in
      let s =
        Generator.generate_automaton ~stats:st ?max_paths:limit
          ~simple:p.simple g a ~max_length
      in
      record (fun m ->
          Metrics.incr ~by:st.edges_scanned m "bfs.edges_scanned";
          Metrics.incr ~by:st.paths_emitted m "bfs.paths_emitted";
          Metrics.set_max m "bfs.max_depth" st.max_depth;
          Metrics.set_max m "bfs.max_frontier" st.max_frontier;
          Metrics.set_max m "pathset.peak" (Path_set.cardinal s));
      s
  in
  record (fun m -> Metrics.set m "result.paths" (Path_set.cardinal result));
  result

let run ?metrics g p =
  let paths, elapsed_s = timed (fun () -> execute ?metrics g p) in
  (paths, { paths = Path_set.cardinal paths; elapsed_s })

(* Lazily drop already-seen paths, then stop at [k] distinct ones. The
   returned sequence owns mutable state: consume it once. *)
let distinct_take k seq =
  let seen = ref Path_set.empty in
  seq
  |> Seq.filter (fun p ->
         if Path_set.mem p !seen then false
         else begin
           seen := Path_set.add p !seen;
           true
         end)
  |> Seq.take k

let run_seq ?limit g (p : Plan.t) =
  (match limit with
  | Some k when k < 0 -> invalid_arg "Eval.run_seq: negative limit"
  | _ -> ());
  match p.strategy with
  | Plan.Product_bfs ->
    let seq =
      Generator.to_seq ~simple:p.simple g (Glushkov.build p.optimized)
        ~max_length:p.max_length
    in
    (match limit with None -> seq | Some k -> distinct_take k seq)
  | Plan.Reference | Plan.Stack_machine ->
    Path_set.elements (execute ?limit g p) |> List.to_seq

let run_limited ?metrics g p ~limit =
  if limit < 0 then invalid_arg "Eval.run_limited: negative limit";
  let paths, elapsed_s = timed (fun () -> execute ~limit ?metrics g p) in
  (paths, { paths = Path_set.cardinal paths; elapsed_s })
