(** Plan execution. *)

open Mrpa_graph
open Mrpa_core

type stats = {
  paths : int;  (** distinct paths produced. *)
  elapsed_s : float;  (** elapsed seconds, on the monotonic clock. *)
}

val timed : (unit -> 'a) -> 'a * float
(** Run the thunk, returning its result and elapsed seconds on the
    monotonic clock ({!Metrics.now_ns}) — never wall time. *)

val execute :
  ?limit:int -> ?metrics:Metrics.t -> Digraph.t -> Plan.t -> Path_set.t
(** Execute the plan's optimized expression under its strategy and length
    bound, untimed. With [?limit:k] at most [k] distinct paths are returned
    and the limit is pushed into the backend wherever short-circuiting is
    sound: {!Plan.Product_bfs} stops the product search at the [k]-th
    distinct path, {!Plan.Stack_machine} aborts level evaluation the moment
    [k] (simple, under [Plan.simple]) paths are banked, and only
    {!Plan.Reference} — the semantics oracle — still materialises the full
    denotation before truncating ({!Path_set.truncate}). With [?metrics]
    the run records backend counters (see {!Metrics} for the key table). *)

val run : ?metrics:Metrics.t -> Digraph.t -> Plan.t -> Path_set.t * stats
(** {!execute} plus timing. *)

val run_seq : ?limit:int -> Digraph.t -> Plan.t -> Path.t Seq.t
(** Streaming execution. Under {!Plan.Product_bfs} paths stream lazily; with
    [?limit] the stream is deduplicated and cut at [limit] distinct paths
    (without it, it may repeat — see {!Mrpa_automata.Generator.to_seq} — and
    the returned sequence owns mutable dedup state, so consume it once).
    Other strategies materialise first — with the limit pushed into the
    run, so {!Plan.Stack_machine} does bounded work — and then stream their
    deduplicated results. *)

val run_limited :
  ?metrics:Metrics.t -> Digraph.t -> Plan.t -> limit:int -> Path_set.t * stats
(** Stop after [limit] distinct paths (LIMIT clause): [run] with
    [execute]'s limit push-down. *)
