(** Plan execution. *)

open Mrpa_graph
open Mrpa_core

type stats = {
  paths : int;  (** distinct paths produced. *)
  elapsed_s : float;  (** wall-clock seconds. *)
}

val run : Digraph.t -> Plan.t -> Path_set.t * stats
(** Execute the plan's optimized expression under its strategy and length
    bound. *)

val run_seq : Digraph.t -> Plan.t -> Path.t Seq.t
(** Streaming execution. Under {!Plan.Product_bfs} paths stream lazily (and
    may repeat — see {!Mrpa_automata.Generator.to_seq}); other strategies
    materialise first and then stream their deduplicated results. *)

val run_limited : Digraph.t -> Plan.t -> limit:int -> Path_set.t * stats
(** Stop after [limit] distinct paths (LIMIT clause). Under
    {!Plan.Product_bfs} the search is cut short; other strategies
    materialise and truncate. *)
