(** Plan execution. *)

open Mrpa_graph
open Mrpa_core

type stats = {
  paths : int;  (** distinct paths produced. *)
  elapsed_s : float;  (** elapsed seconds, on the monotonic clock. *)
}

type outcome = {
  paths : Path_set.t;  (** the (possibly partial) result set. *)
  verdict : Err.verdict;
      (** whether [paths] is the full denotation or a sound subset. *)
  stats : stats;
}

val timed : (unit -> 'a) -> 'a * float
(** Run the thunk, returning its result and elapsed seconds on the
    monotonic clock ({!Metrics.now_ns}) — never wall time. *)

val execute :
  ?limit:int ->
  ?metrics:Metrics.t ->
  ?budget:Budget.t ->
  Digraph.t ->
  Plan.t ->
  Path_set.t
(** Execute the plan's optimized expression under its strategy and length
    bound, untimed. With [?limit:k] at most [k] distinct paths are returned
    and the limit is pushed into the backend wherever short-circuiting is
    sound: {!Plan.Product_bfs} stops the product search at the [k]-th
    distinct path, {!Plan.Stack_machine} aborts level evaluation the moment
    [k] (simple, under [Plan.simple]) paths are banked, and only
    {!Plan.Reference} — the semantics oracle — still materialises the full
    denotation before truncating ({!Path_set.truncate}). With [?metrics]
    the run records backend counters (see {!Metrics} for the key table).

    With [?budget] the run is governed: the budget's guard polls at every
    backend checkpoint and the run degrades gracefully to a sound partial
    result when a bound trips — {!Plan.Stack_machine} returns the paths
    banked so far, {!Plan.Product_bfs} the distinct paths already collected
    (its memory budget is checked {e before} banking, so [max_live] is
    never exceeded), and {!Plan.Reference}, whose bottom-up evaluation has
    no salvageable intermediate state, is re-run by iterative deepening on
    the length bound so the last completed round survives. Use
    {!execute_verdict} or {!run_governed} to learn whether the result is
    partial. *)

val execute_verdict :
  ?limit:int ->
  ?metrics:Metrics.t ->
  ?budget:Budget.t ->
  Digraph.t ->
  Plan.t ->
  Path_set.t * Err.verdict
(** {!execute}, paired with the run's verdict ({!Budget.verdict}): which
    bound (or limit) stopped it, if any. Also records [budget.*] metrics
    counters when both [?metrics] and [?budget] are given. *)

val run_governed :
  ?limit:int ->
  ?metrics:Metrics.t ->
  ?budget:Budget.t ->
  Digraph.t ->
  Plan.t ->
  outcome
(** {!execute_verdict} plus timing. *)

val run :
  ?metrics:Metrics.t ->
  ?budget:Budget.t ->
  Digraph.t ->
  Plan.t ->
  Path_set.t * stats
(** {!execute} plus timing. *)

val run_seq :
  ?limit:int -> ?budget:Budget.t -> Digraph.t -> Plan.t -> Path.t Seq.t
(** Streaming execution. Under {!Plan.Product_bfs} paths stream lazily; with
    [?limit] the stream is deduplicated and cut at [limit] distinct paths
    (without it, it may repeat — see {!Mrpa_automata.Generator.to_seq} — and
    the returned sequence owns mutable dedup state, so consume it once).
    Other strategies materialise first — with the limit pushed into the
    run, so {!Plan.Stack_machine} does bounded work — and then stream their
    deduplicated results. With [?budget], a tripped bound ends the stream
    gracefully (no exception reaches the consumer); inspect
    {!Budget.tripped} afterwards to distinguish exhaustion from a bound. *)

val run_limited :
  ?metrics:Metrics.t ->
  ?budget:Budget.t ->
  Digraph.t ->
  Plan.t ->
  limit:int ->
  Path_set.t * stats
(** Stop after [limit] distinct paths (LIMIT clause): [run] with
    [execute]'s limit push-down. *)
