open Mrpa_graph
open Mrpa_core

let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let is_all_digits s = s <> "" && String.for_all (function '0' .. '9' -> true | _ -> false) s

let name s =
  if is_plain_ident s || is_all_digits s then s
  else if not (String.contains s '\'') then "'" ^ s ^ "'"
  else "\"" ^ s ^ "\""

let vertex_name g v = name (Digraph.vertex_name g v)
let label_name g l = name (Digraph.label_name g l)

let position render = function
  | None -> "_"
  | Some [ x ] -> render x
  | Some xs -> "{" ^ String.concat "," (List.map render xs) ^ "}"

let edge_triple g e =
  Printf.sprintf "(%s,%s,%s)" (vertex_name g (Edge.tail e))
    (label_name g (Edge.label e))
    (vertex_name g (Edge.head e))

let explicit g es =
  "{" ^ String.concat "; " (List.map (edge_triple g) (Edge.Set.elements es)) ^ "}"

(* Selector forms the grammar cannot spell are flattened to their explicit
   edge set over the graph; empty extents have no selector syntax and are
   handled at the expression level (-> "empty"). *)
let selector g s =
  match s with
  | Selector.Pattern { src = None; lbl = None; dst = None } -> "E"
  | Selector.Pattern { src; lbl; dst } ->
    Printf.sprintf "[%s,%s,%s]"
      (position (vertex_name g) (Option.map Vertex.Set.elements src))
      (position (label_name g) (Option.map Label.Set.elements lbl))
      (position (vertex_name g) (Option.map Vertex.Set.elements dst))
  | Selector.Explicit es when not (Edge.Set.is_empty es) -> explicit g es
  | Selector.Explicit _ | Selector.Union _ | Selector.Inter _ | Selector.Diff _
    ->
    explicit g (Selector.enumerate_set g s)

let rec expr g (e : Expr.t) =
  match e with
  | Empty -> "empty"
  | Epsilon -> "eps"
  | Sel s -> (
    match s with
    | Selector.Pattern { src; lbl; dst }
      when (match src with Some vs -> Vertex.Set.is_empty vs | None -> false)
           || (match lbl with Some ls -> Label.Set.is_empty ls | None -> false)
           || (match dst with Some vs -> Vertex.Set.is_empty vs | None -> false)
      ->
      (* an empty position set matches nothing and has no selector syntax *)
      "empty"
    | Selector.Pattern _ -> selector g s
    | Selector.Explicit es ->
      if Edge.Set.is_empty es then "empty" else explicit g es
    | Selector.Union _ | Selector.Inter _ | Selector.Diff _ ->
      let extent = Selector.enumerate_set g s in
      if Edge.Set.is_empty extent then "empty" else explicit g extent)
  | Union (a, b) -> Printf.sprintf "(%s | %s)" (expr g a) (expr g b)
  | Join (a, b) -> Printf.sprintf "(%s . %s)" (expr g a) (expr g b)
  | Product (a, b) -> Printf.sprintf "(%s >< %s)" (expr g a) (expr g b)
  | Star a -> (
    match a with
    | Empty | Epsilon | Sel (Selector.Pattern _) -> expr g a ^ "*"
    | _ -> Printf.sprintf "(%s)*" (expr g a))
