open Mrpa_graph
open Mrpa_core

type error = { message : string; position : int }

exception Parse_failure of error

let fail pos fmt =
  Format.kasprintf (fun message -> raise (Parse_failure { message; position = pos })) fmt

type state = {
  tokens : Lexer.located array;
  mutable cursor : int;
  graph : Digraph.t;
  mutable macros : (string * Spanned.t) list;
}

let peek st = st.tokens.(st.cursor)
let advance st = st.cursor <- st.cursor + 1

(* Start offset of the upcoming token / end offset of the last consumed
   token: every production wraps its result in the span they delimit. *)
let tok_start st = (peek st).Lexer.pos
let prev_stop st = st.tokens.(st.cursor - 1).Lexer.stop
let span_from st start = Span.make ~start ~stop:(prev_stop st)

let expect st token what =
  let { Lexer.token = t; pos; _ } = peek st in
  if t = token then advance st else fail pos "expected %s" what

let name_of_token st =
  let { Lexer.token; pos; _ } = peek st in
  match token with
  | Lexer.IDENT s ->
    advance st;
    (s, pos)
  | Lexer.INT i ->
    advance st;
    (string_of_int i, pos)
  | _ -> fail pos "expected a name"

let resolve_vertex st (name, pos) =
  match Digraph.find_vertex st.graph name with
  | Some v -> v
  | None -> fail pos "unknown vertex %S" name

let resolve_label st (name, pos) =
  match Digraph.find_label st.graph name with
  | Some l -> l
  | None -> fail pos "unknown label %S" name

(* names ::= name | '{' name (',' name)* '}' ; returns resolved via [f] *)
let parse_names st f =
  match (peek st).Lexer.token with
  | Lexer.LBRACE ->
    advance st;
    let rec more acc =
      let x = f st (name_of_token st) in
      match (peek st).Lexer.token with
      | Lexer.COMMA ->
        advance st;
        more (x :: acc)
      | _ ->
        expect st Lexer.RBRACE "'}'";
        List.rev (x :: acc)
    in
    more []
  | _ -> [ f st (name_of_token st) ]

let all_vertices st = Vertex.Set.of_list (Digraph.vertices st.graph)
let all_labels st = Label.Set.of_list (Digraph.labels st.graph)

(* vpos / lpos ::= '_' | names | '!' names *)
let parse_vertex_position st =
  match (peek st).Lexer.token with
  | Lexer.UNDERSCORE ->
    advance st;
    None
  | Lexer.BANG ->
    advance st;
    let vs = Vertex.Set.of_list (parse_names st resolve_vertex) in
    Some (Vertex.Set.diff (all_vertices st) vs)
  | _ -> Some (Vertex.Set.of_list (parse_names st resolve_vertex))

let parse_label_position st =
  match (peek st).Lexer.token with
  | Lexer.UNDERSCORE ->
    advance st;
    None
  | Lexer.BANG ->
    advance st;
    let ls = Label.Set.of_list (parse_names st resolve_label) in
    Some (Label.Set.diff (all_labels st) ls)
  | _ -> Some (Label.Set.of_list (parse_names st resolve_label))

let parse_selector st =
  expect st Lexer.LBRACKET "'['";
  let src = parse_vertex_position st in
  expect st Lexer.COMMA "','";
  let lbl = parse_label_position st in
  expect st Lexer.COMMA "','";
  let dst = parse_vertex_position st in
  expect st Lexer.RBRACKET "']'";
  Selector.pattern ?src ?lbl ?dst ()

let parse_triple st =
  expect st Lexer.LPAREN "'('";
  let tail = resolve_vertex st (name_of_token st) in
  expect st Lexer.COMMA "','";
  let label = resolve_label st (name_of_token st) in
  expect st Lexer.COMMA "','";
  let head = resolve_vertex st (name_of_token st) in
  expect st Lexer.RPAREN "')'";
  Edge.make ~tail ~label ~head

let parse_edge_set st =
  expect st Lexer.LBRACE "'{'";
  let rec more acc =
    let e = parse_triple st in
    match (peek st).Lexer.token with
    | Lexer.SEMI ->
      advance st;
      more (Edge.Set.add e acc)
    | _ ->
      expect st Lexer.RBRACE "'}'";
      Edge.Set.add e acc
  in
  Selector.edges (more Edge.Set.empty)

let rec parse_expr st =
  let start = tok_start st in
  let left = parse_cat st in
  match (peek st).Lexer.token with
  | Lexer.PIPE ->
    advance st;
    let right = parse_expr st in
    Spanned.mk (span_from st start) (Spanned.Union (left, right))
  | _ -> left

and parse_cat st =
  let start = tok_start st in
  let rec loop left =
    match (peek st).Lexer.token with
    | Lexer.DOT ->
      advance st;
      let right = parse_postfix st in
      loop (Spanned.mk (span_from st start) (Spanned.Join (left, right)))
    | Lexer.CROSS ->
      advance st;
      let right = parse_postfix st in
      loop (Spanned.mk (span_from st start) (Spanned.Product (left, right)))
    | _ -> left
  in
  loop (parse_postfix st)

and parse_postfix st =
  let start = tok_start st in
  let rec loop e =
    match (peek st).Lexer.token with
    | Lexer.STAR ->
      advance st;
      loop (Spanned.mk (span_from st start) (Spanned.Star e))
    | Lexer.PLUS ->
      advance st;
      loop (Spanned.plus ~span:(span_from st start) e)
    | Lexer.QUESTION ->
      advance st;
      loop (Spanned.opt ~span:(span_from st start) e)
    | Lexer.LBRACE -> (
      (* '{' here is a repetition only when followed by an INT; otherwise it
         belongs to a following atom and must not be consumed. *)
      match st.tokens.(st.cursor + 1).Lexer.token with
      | Lexer.INT lo ->
        advance st;
        advance st;
        let e =
          match (peek st).Lexer.token with
          | Lexer.COMMA ->
            advance st;
            let { Lexer.token; pos; _ } = peek st in
            (match token with
            | Lexer.INT hi ->
              if hi < lo then
                fail pos "upper repetition bound %d is below the lower bound %d"
                  hi lo;
              advance st;
              expect st Lexer.RBRACE "'}'";
              Spanned.repeat_range ~span:(span_from st start) e ~min:lo ~max:hi
            | _ -> fail pos "expected an upper repetition bound")
          | _ ->
            expect st Lexer.RBRACE "'}'";
            Spanned.repeat ~span:(span_from st start) e lo
        in
        loop e
      | _ -> e)
    | _ -> e
  in
  loop (parse_atom st)

and parse_atom st =
  let { Lexer.token; pos; _ } = peek st in
  match token with
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN "')'";
    (* the parenthesised expression covers the parentheses *)
    Spanned.with_span (span_from st pos) e
  | Lexer.IDENT "eps" ->
    advance st;
    Spanned.mk (span_from st pos) Spanned.Epsilon
  | Lexer.IDENT "empty" ->
    advance st;
    Spanned.mk (span_from st pos) Spanned.Empty
  | Lexer.IDENT "E" ->
    advance st;
    Spanned.mk (span_from st pos) (Spanned.Sel Selector.universe)
  | Lexer.IDENT (("let" | "in") as kw) -> fail pos "reserved word %S" kw
  | Lexer.IDENT name -> (
    match List.assoc_opt name st.macros with
    | Some e ->
      advance st;
      (* the root of the expansion points at the use site; inner nodes keep
         their definition-site spans (both live in the same source) *)
      Spanned.with_span (span_from st pos) e
    | None -> fail pos "unknown macro %S" name)
  | Lexer.LBRACKET ->
    let s = parse_selector st in
    Spanned.mk (span_from st pos) (Spanned.Sel s)
  | Lexer.LBRACE ->
    let s = parse_edge_set st in
    Spanned.mk (span_from st pos) (Spanned.Sel s)
  | _ -> fail pos "expected an expression"

(* query ::= ('let' name '=' expr 'in')* expr *)
let rec parse_query st =
  match (peek st).Lexer.token with
  | Lexer.IDENT "let" ->
    advance st;
    let name, pos = name_of_token st in
    if name = "let" || name = "in" then fail pos "reserved word %S" name;
    expect st Lexer.EQUAL "'='";
    let body = parse_expr st in
    let { Lexer.token; pos; _ } = peek st in
    (match token with
    | Lexer.IDENT "in" -> advance st
    | _ -> fail pos "expected 'in'");
    st.macros <- (name, body) :: st.macros;
    parse_query st
  | _ -> parse_expr st

let parse_spanned graph input =
  match Lexer.tokenize input with
  | exception Lexer.Lex_error (message, position) -> Error { message; position }
  | tokens -> (
    let st = { tokens = Array.of_list tokens; cursor = 0; graph; macros = [] } in
    match parse_query st with
    | exception Parse_failure e -> Error e
    | expr ->
      let { Lexer.token; pos; _ } = peek st in
      if token = Lexer.EOF then Ok expr
      else Error { message = "trailing input"; position = pos })

let parse graph input = Result.map Spanned.strip (parse_spanned graph input)

(* CRPQ concrete syntax: select vars where (var, expr, var), ... *)
let parse_variable st =
  let { Lexer.token; pos; _ } = peek st in
  match token with
  | Lexer.IDENT name when name <> "select" && name <> "where" ->
    advance st;
    name
  | _ -> fail pos "expected a variable name"

let expect_keyword st kw =
  let { Lexer.token; pos; _ } = peek st in
  match token with
  | Lexer.IDENT name when name = kw -> advance st
  | _ -> fail pos "expected %S" kw

let parse_crpq_atom st =
  expect st Lexer.LPAREN "'('";
  let source = parse_variable st in
  expect st Lexer.COMMA "','";
  let expr = parse_expr st in
  expect st Lexer.COMMA "','";
  let target = parse_variable st in
  expect st Lexer.RPAREN "')'";
  (source, Spanned.strip expr, target)

let parse_crpq_body st =
  expect_keyword st "select";
  let rec vars acc =
    let v = parse_variable st in
    match (peek st).Lexer.token with
    | Lexer.COMMA ->
      advance st;
      vars (v :: acc)
    | _ -> List.rev (v :: acc)
  in
  let head = vars [] in
  expect_keyword st "where";
  let rec atoms acc =
    let a = parse_crpq_atom st in
    match (peek st).Lexer.token with
    | Lexer.COMMA ->
      advance st;
      atoms (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  (head, atoms [])

let parse_crpq_raw graph input =
  match Lexer.tokenize input with
  | exception Lexer.Lex_error (message, position) -> Error { message; position }
  | tokens -> (
    let st = { tokens = Array.of_list tokens; cursor = 0; graph; macros = [] } in
    match parse_crpq_body st with
    | exception Parse_failure e -> Error e
    | result ->
      let { Lexer.token; pos; _ } = peek st in
      if token = Lexer.EOF then Ok result
      else Error { message = "trailing input"; position = pos })

let pp_error fmt e =
  Format.fprintf fmt "parse error at offset %d: %s" e.position e.message

let render_error ~source e =
  let span = Span.point e.position in
  match Mrpa_lint.Diagnostic.excerpt ~source span with
  | None -> Format.asprintf "%a" pp_error e
  | Some excerpt -> Format.asprintf "%a@\n%s" pp_error e excerpt

let parse_exn graph input =
  match parse graph input with
  | Ok e -> e
  | Error e -> Format.kasprintf failwith "%a" pp_error e
