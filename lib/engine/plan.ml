open Mrpa_core

type strategy = Reference | Stack_machine | Product_bfs

type t = {
  original : Expr.t;
  optimized : Expr.t;
  strategy : strategy;
  max_length : int;
  simple : bool;
  rewrites : string list;
  strategy_reason : string;
  notes : Mrpa_lint.Diagnostic.t list;
  cost : Mrpa_lint.Cost.t;
}

let strategy_name = function
  | Reference -> "reference"
  | Stack_machine -> "stack-machine"
  | Product_bfs -> "product-bfs"

let strategy_of_string = function
  | "reference" -> Some Reference
  | "stack" | "stack-machine" -> Some Stack_machine
  | "bfs" | "product-bfs" -> Some Product_bfs
  | _ -> None

let with_strategy p s =
  if p.strategy = s then p
  else { p with strategy = s; strategy_reason = "forced by caller" }

let pp_with pp_expr fmt p =
  Format.fprintf fmt "@[<v>plan:@,  expression: %a@,  optimized:  %a@," pp_expr
    p.original pp_expr p.optimized;
  Format.fprintf fmt "  rewrites:   %s@,"
    (match p.rewrites with [] -> "(none)" | l -> String.concat ", " l);
  List.iter
    (fun n -> Format.fprintf fmt "  note:       %a@," Mrpa_lint.Diagnostic.pp n)
    p.notes;
  Format.fprintf fmt "  strategy:   %s (%s)@,  max length: %d%s@,"
    (strategy_name p.strategy) p.strategy_reason p.max_length
    (if p.simple then " (simple paths only)" else "");
  Format.fprintf fmt "  cost:       %a@,  cost table:@,    @[<v>%a@]@]"
    Mrpa_lint.Cost.pp_summary p.cost
    (Mrpa_lint.Cost.pp_table pp_expr)
    p.cost

let pp fmt p = pp_with Expr.pp fmt p
let pp_named g fmt p = pp_with (Expr.pp_named g) fmt p
