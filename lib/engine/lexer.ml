type token =
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | CROSS
  | PIPE
  | STAR
  | PLUS
  | QUESTION
  | BANG
  | UNDERSCORE
  | EQUAL
  | IDENT of string
  | INT of int
  | EOF

type located = { token : token; pos : int; stop : int }

exception Lex_error of string * int

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_letter c || is_digit c || c = '_'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit pos stop token = tokens := { token; pos; stop } :: !tokens in
  let emit1 i token = emit i (i + 1) token in
  let rec scan i =
    if i >= n then emit i i EOF
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | '[' -> emit1 i LBRACKET; scan (i + 1)
      | ']' -> emit1 i RBRACKET; scan (i + 1)
      | '{' -> emit1 i LBRACE; scan (i + 1)
      | '}' -> emit1 i RBRACE; scan (i + 1)
      | '(' -> emit1 i LPAREN; scan (i + 1)
      | ')' -> emit1 i RPAREN; scan (i + 1)
      | ',' -> emit1 i COMMA; scan (i + 1)
      | ';' -> emit1 i SEMI; scan (i + 1)
      | '.' -> emit1 i DOT; scan (i + 1)
      | '|' -> emit1 i PIPE; scan (i + 1)
      | '*' -> emit1 i STAR; scan (i + 1)
      | '+' -> emit1 i PLUS; scan (i + 1)
      | '?' -> emit1 i QUESTION; scan (i + 1)
      | '!' -> emit1 i BANG; scan (i + 1)
      | '=' -> emit1 i EQUAL; scan (i + 1)
      | '>' ->
        if i + 1 < n && input.[i + 1] = '<' then begin
          emit i (i + 2) CROSS;
          scan (i + 2)
        end
        else raise (Lex_error ("expected '><'", i))
      | ('"' | '\'') as quote ->
        let rec find_close j =
          if j >= n then raise (Lex_error ("unterminated string", i))
          else if input.[j] = quote then j
          else find_close (j + 1)
        in
        let close = find_close (i + 1) in
        emit i (close + 1) (IDENT (String.sub input (i + 1) (close - i - 1)));
        scan (close + 1)
      | c when is_digit c ->
        let rec stop j = if j < n && is_digit input.[j] then stop (j + 1) else j in
        let j = stop i in
        emit i j (INT (int_of_string (String.sub input i (j - i))));
        scan j
      | c when is_letter c || c = '_' ->
        let rec stop j =
          if j < n && is_ident_char input.[j] then stop (j + 1) else j
        in
        let j = stop i in
        let word = String.sub input i (j - i) in
        emit i j (if word = "_" then UNDERSCORE else IDENT word);
        scan j
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
  in
  scan 0;
  List.rev !tokens

let pp_token fmt = function
  | LBRACKET -> Format.pp_print_string fmt "["
  | RBRACKET -> Format.pp_print_string fmt "]"
  | LBRACE -> Format.pp_print_string fmt "{"
  | RBRACE -> Format.pp_print_string fmt "}"
  | LPAREN -> Format.pp_print_string fmt "("
  | RPAREN -> Format.pp_print_string fmt ")"
  | COMMA -> Format.pp_print_string fmt ","
  | SEMI -> Format.pp_print_string fmt ";"
  | DOT -> Format.pp_print_string fmt "."
  | CROSS -> Format.pp_print_string fmt "><"
  | PIPE -> Format.pp_print_string fmt "|"
  | STAR -> Format.pp_print_string fmt "*"
  | PLUS -> Format.pp_print_string fmt "+"
  | QUESTION -> Format.pp_print_string fmt "?"
  | BANG -> Format.pp_print_string fmt "!"
  | UNDERSCORE -> Format.pp_print_string fmt "_"
  | EQUAL -> Format.pp_print_string fmt "="
  | IDENT s -> Format.fprintf fmt "%S" s
  | INT i -> Format.pp_print_int fmt i
  | EOF -> Format.pp_print_string fmt "<eof>"
