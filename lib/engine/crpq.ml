open Mrpa_graph
open Mrpa_core

type atom = { source : string; expr : Expr.t; target : string }
type t = { head : string list; atoms : atom list }

let variables_of atoms =
  List.fold_left
    (fun acc a ->
      let add acc v = if List.mem v acc then acc else acc @ [ v ] in
      add (add acc a.source) a.target)
    [] atoms

let make ~head raw_atoms =
  if head = [] then invalid_arg "Crpq.make: empty head";
  let atoms =
    List.map (fun (source, expr, target) -> { source; expr; target }) raw_atoms
  in
  if atoms = [] then invalid_arg "Crpq.make: no atoms";
  let vars = variables_of atoms in
  List.iter
    (fun v ->
      if not (List.mem v vars) then
        invalid_arg (Printf.sprintf "Crpq.make: head variable %S not in any atom" v))
    head;
  let rec distinct = function
    | [] -> true
    | v :: rest -> (not (List.mem v rest)) && distinct rest
  in
  if not (distinct head) then invalid_arg "Crpq.make: repeated head variable";
  { head; atoms }

let variables q =
  let rest =
    List.filter (fun v -> not (List.mem v q.head)) (variables_of q.atoms)
  in
  q.head @ rest

(* Bindings are assoc lists variable -> vertex, extended atom by atom. Each
   atom's endpoint-pair relation comes from the boolean-semiring DP (no
   path sets are materialised); a nullable atom additionally relates every
   vertex to itself. *)
let eval ?(max_length = Engine.default_max_length) g q =
  let atom_pairs a =
    let pairs = Mrpa_semiring.Eval.reachable_pairs g a.expr ~max_length in
    if Expr.nullable a.expr then
      let loops = List.map (fun v -> (v, v)) (Digraph.vertices g) in
      List.sort_uniq compare (pairs @ loops)
    else pairs
  in
  let extend bindings a =
    let pairs = atom_pairs a in
    (* index pairs by source vertex for bound-source lookups *)
    let by_source = Vertex.Tbl.create 64 in
    List.iter
      (fun (u, v) ->
        let existing =
          match Vertex.Tbl.find_opt by_source u with Some l -> l | None -> []
        in
        Vertex.Tbl.replace by_source u ((u, v) :: existing))
      pairs;
    List.concat_map
      (fun binding ->
        let bound name = List.assoc_opt name binding in
        let candidates =
          match bound a.source with
          | Some u -> (
            match Vertex.Tbl.find_opt by_source u with
            | Some l -> l
            | None -> [])
          | None -> pairs
        in
        List.filter_map
          (fun (u, v) ->
            let compatible name vertex =
              match List.assoc_opt name binding with
              | Some existing -> Vertex.equal existing vertex
              | None -> true
            in
            if compatible a.source u && compatible a.target v then begin
              let binding =
                if List.mem_assoc a.source binding then binding
                else (a.source, u) :: binding
              in
              let binding =
                if List.mem_assoc a.target binding then binding
                else (a.target, v) :: binding
              in
              Some binding
            end
            else None)
          candidates)
      bindings
  in
  let bindings = List.fold_left extend [ [] ] q.atoms in
  let tuples =
    List.map
      (fun binding -> List.map (fun v -> List.assoc v binding) q.head)
      bindings
  in
  List.sort_uniq compare tuples

let count ?max_length g q = List.length (eval ?max_length g q)

let parse g input =
  match Parser.parse_crpq_raw g input with
  | Error e -> Error e
  | Ok (head, raw_atoms) -> (
    match make ~head raw_atoms with
    | q -> Ok q
    | exception Invalid_argument message -> Error { Parser.message; position = 0 })

let parse_exn g input =
  match parse g input with
  | Ok q -> q
  | Error e -> Format.kasprintf failwith "%a" Parser.pp_error e

let pp fmt q =
  Format.fprintf fmt "select %s where " (String.concat ", " q.head);
  List.iteri
    (fun i a ->
      if i > 0 then Format.pp_print_string fmt ", ";
      Format.fprintf fmt "(%s, %a, %s)" a.source Expr.pp a.expr a.target)
    q.atoms
