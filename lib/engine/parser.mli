(** Parser for the textual regular-path query language.

    The concrete syntax follows the paper's §IV-A notation as closely as
    ASCII allows:

    {v
query    ::= ('let' name '=' expr 'in')* expr
expr     ::= cat ('|' cat)*                  union, lowest precedence
cat      ::= postfix (('.' | '><') postfix)* join / product, left assoc
postfix  ::= atom ('*' | '+' | '?' | '{' n '}' | '{' n ',' m '}')*
atom     ::= '(' expr ')' | 'eps' | 'empty' | 'E' | selector | edgeset
selector ::= '[' vpos ',' lpos ',' vpos ']'
vpos     ::= '_' | names | '!' names         vertex position ('!' = V \ set)
lpos     ::= '_' | names | '!' names         label position ('!' = Omega \ set)
names    ::= name | '{' name (',' name)* '}'
edgeset  ::= '{' triple (';' triple)* '}'    explicit edges, e.g. {(j,alpha,i)}
triple   ::= '(' name ',' name ',' name ')'
name     ::= identifier | 'quoted' | "quoted" | integer
    v}

    Examples (the paper's Figure 1 expression, and a labeled 2-step):

    {v
[i,alpha,_] . [_,beta,_]* . (([_,alpha,j] . {(j,alpha,i)}) | [_,alpha,k])
[_,knows,_] . [_,works_for,_]
let friend = [_,knows,_] in friend . friend . [_,works_for,_]
    v}

    [let] bindings define reusable macros, substituted at parse time
    (purely syntactic; [let] and [in] are reserved words).

    Vertex and label names are resolved against the supplied graph; naming a
    vertex or label the graph does not contain is an error (catching typos
    beats silently returning the empty answer). *)

open Mrpa_graph
open Mrpa_core

type error = { message : string; position : int }

val parse : Digraph.t -> string -> (Expr.t, error) result

val parse_spanned : Digraph.t -> string -> (Spanned.t, error) result
(** Like {!parse}, but every AST node carries the byte span of the source
    text it was parsed from, for diagnostics ({!Mrpa_lint}).
    [Result.map Spanned.strip (parse_spanned g s) = parse g s]. *)

val parse_exn : Digraph.t -> string -> Expr.t
(** Raises [Failure] with a rendered {!error}. *)

val parse_crpq_raw :
  Digraph.t ->
  string ->
  (string list * (string * Expr.t * string) list, error) result
(** Parse the conjunctive form
    [select v (',' v)* where atom (',' atom)*] with
    [atom ::= '(' var ',' expr ',' var ')'], returning the head variables
    and raw atoms. {!Crpq.parse} wraps this with validation. *)

val pp_error : Format.formatter -> error -> unit

val render_error : source:string -> error -> string
(** {!pp_error} followed by the offending source line with a caret at the
    error's byte offset (the same rendering lint diagnostics use). *)
