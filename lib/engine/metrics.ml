(* Monotonic clock: CLOCK_MONOTONIC via the bechamel stub, immune to NTP
   slews and wall-clock steps (the whole point of this module). *)
let now_ns = Monotonic_clock.now

let elapsed_ns ~since = Int64.sub (now_ns ()) since
let ns_to_ms ns = Int64.to_float ns /. 1e6

type t = {
  mutable stage_order : string list;  (* reversed insertion order *)
  stage_ns : (string, int64) Hashtbl.t;
  counters : (string, int) Hashtbl.t;
}

let create () =
  { stage_order = []; stage_ns = Hashtbl.create 8; counters = Hashtbl.create 16 }

let add_stage_ns t name ns =
  if not (Hashtbl.mem t.stage_ns name) then
    t.stage_order <- name :: t.stage_order;
  let prior = Option.value ~default:0L (Hashtbl.find_opt t.stage_ns name) in
  Hashtbl.replace t.stage_ns name (Int64.add prior (Int64.max 0L ns))

let time t name f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> add_stage_ns t name (elapsed_ns ~since:t0)) f

let stage_ns t name = Hashtbl.find_opt t.stage_ns name

let stages t =
  List.rev_map (fun name -> (name, Hashtbl.find t.stage_ns name)) t.stage_order

let incr ?(by = 1) t name =
  let prior = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
  Hashtbl.replace t.counters name (prior + by)

let set t name v = Hashtbl.replace t.counters name v

let set_max t name v =
  let prior = Option.value ~default:min_int (Hashtbl.find_opt t.counters name) in
  Hashtbl.replace t.counters name (max prior v)

let counter t name = Hashtbl.find_opt t.counters name

let counters t =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  Format.fprintf fmt "@[<v>profile:";
  List.iter
    (fun (name, ns) ->
      Format.fprintf fmt "@,  %-10s %8.3f ms" (name ^ ":") (ns_to_ms ns))
    (stages t);
  (match counters t with
  | [] -> ()
  | cs ->
    Format.fprintf fmt "@,counters:";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "@,  %-26s %d" name v)
      cs);
  Format.fprintf fmt "@]"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let schema_version = "mrpa.profile/1"

let to_json t =
  let stage (name, ns) =
    Printf.sprintf "{\"stage\":%s,\"ns\":%Ld}" (escape_string name) ns
  in
  let counter (name, v) = Printf.sprintf "%s:%d" (escape_string name) v in
  Printf.sprintf "{\"schema\":%s,\"stages\":[%s],\"counters\":{%s}}"
    (escape_string schema_version)
    (String.concat "," (List.map stage (stages t)))
    (String.concat "," (List.map counter (counters t)))
