(** Conjunctive regular path queries (CRPQ).

    The classic extension of regular path queries (Cruz–Mendelzon–Wood
    lineage, the same line of work as the paper's ref. [8]): a conjunction
    of path atoms over shared vertex variables, with a tuple of
    distinguished (answer) variables:

    {v
ans(x, z) ← (x, R₁, y) ∧ (y, R₂, z) ∧ (x, R₃, z)
    v}

    Each atom [(x, R, y)] holds under a binding when some denoted path of
    [R] (within the engine's length bound) runs from [x]'s vertex to [y]'s
    vertex; a nullable [R] additionally relates every vertex to itself
    ([ε] runs anywhere). Evaluation computes each atom's endpoint-pair
    relation with the boolean-semiring DP — no path set is materialised —
    then joins the relations over the shared variables.

    Concrete syntax (see {!parse}):

    {v
select x, z where (x, [_,knows,_] . [_,knows,_], z), (z, [_,works_for,_], x)
    v} *)

open Mrpa_graph
open Mrpa_core

type atom = {
  source : string;  (** variable at γ⁻ of the atom's paths. *)
  expr : Expr.t;
  target : string;  (** variable at γ⁺. *)
}

type t = private {
  head : string list;  (** distinguished variables, in output order. *)
  atoms : atom list;
}

val make : head:string list -> (string * Expr.t * string) list -> t
(** Raises [Invalid_argument] when the head is empty, a head variable
    appears in no atom, or the head repeats a variable. *)

val variables : t -> string list
(** All variables, head first then the rest in first-occurrence order. *)

val eval : ?max_length:int -> Digraph.t -> t -> Vertex.t list list
(** Answer tuples (one vertex per head variable), deduplicated and sorted.
    [max_length] (default {!Engine.default_max_length}) bounds each atom's
    paths. *)

val count : ?max_length:int -> Digraph.t -> t -> int

val parse : Digraph.t -> string -> (t, Parser.error) result
(** [select x, y where (x, expr, y), ...] — expressions use the full
    {!Parser} grammar (macros included via a leading [let ... in] inside
    the atom's expression position are {e not} supported; bind macros per
    atom expression instead). Variables are free identifiers, unrelated to
    vertex names. *)

val parse_exn : Digraph.t -> string -> t

val pp : Format.formatter -> t -> unit
