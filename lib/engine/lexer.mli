(** Tokeniser for the textual query language (see {!Parser} for the
    grammar). Hand-written; positions are byte offsets into the input and
    are carried through to parse errors. *)

type token =
  | LBRACKET  (** [\[] *)
  | RBRACKET  (** [\]] *)
  | LBRACE  (** [{] *)
  | RBRACE  (** [}] *)
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT  (** the join operator [.] *)
  | CROSS  (** the product operator [><] *)
  | PIPE  (** union *)
  | STAR
  | PLUS
  | QUESTION
  | BANG  (** complement prefix inside selector positions *)
  | UNDERSCORE  (** wildcard position *)
  | EQUAL  (** macro binding in [let name = expr in …] *)
  | IDENT of string
  | INT of int
  | EOF

type located = { token : token; pos : int; stop : int }
(** [pos] is the byte offset of the token's first character; [stop] is one
    past its last character, so [\[pos, stop)] is the token's source span. *)

exception Lex_error of string * int
(** Message and byte offset. *)

val tokenize : string -> located list
(** The full token stream, ending with [EOF]. Whitespace separates tokens;
    identifiers are letters, digits and underscores (starting with a
    letter), and single- or double-quoted strings admit arbitrary names.
    Raises {!Lex_error}. *)

val pp_token : Format.formatter -> token -> unit
