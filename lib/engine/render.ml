open Mrpa_graph
open Mrpa_core

let escape_string = Metrics.escape_string

let array items = "[" ^ String.concat "," items ^ "]"

let obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> escape_string k ^ ":" ^ v) fields)
  ^ "}"

let edge_json g e =
  obj
    [
      ("tail", escape_string (Digraph.vertex_name g (Edge.tail e)));
      ("label", escape_string (Digraph.label_name g (Edge.label e)));
      ("head", escape_string (Digraph.vertex_name g (Edge.head e)));
    ]

let path_json g p =
  obj
    [
      ("edges", array (List.map (edge_json g) (Path.edges p)));
      ( "label_word",
        array
          (List.map
             (fun l -> escape_string (Digraph.label_name g l))
             (Path.label_word p)) );
      ("length", string_of_int (Path.length p));
      ("joint", string_of_bool (Path.is_joint p));
    ]

let paths_json g s = array (List.map (path_json g) (Path_set.elements s))

let result_json g (r : Engine.result) =
  obj
    [
      ("paths", paths_json g r.Engine.paths);
      ("count", string_of_int (Path_set.cardinal r.Engine.paths));
      ( "elapsed_ms",
        Printf.sprintf "%.3f" (1000.0 *. r.Engine.stats.Eval.elapsed_s) );
      ( "strategy",
        escape_string (Plan.strategy_name r.Engine.plan.Plan.strategy) );
      ("verdict", escape_string (Err.verdict_name r.Engine.verdict));
      ( "rewrites",
        array (List.map escape_string r.Engine.plan.Plan.rewrites) );
    ]

let tuples_json g ~head tuples =
  array
    (List.map
       (fun tuple ->
         obj
           (List.map2
              (fun var v -> (var, escape_string (Digraph.vertex_name g v)))
              head tuple))
       tuples)
