(** Algebraic query optimisation.

    Two stages:

    + {!simplify}: a bottom-up rewriting fixpoint over identities of the
      algebra (all are theorems of §II's definitions and are covered by the
      property-test suite):
      - [∅ | r → r], [r | r → r], [ε | r → r] when [r] is nullable
      - [∅ . r → ∅], [ε . r → r] (and symmetrically; likewise for [><])
      - star collapses: empty and epsilon stars, nested stars, epsilon-stripped
        stars, and the join of a star with itself
      - selector fusion: [\[A\] | \[B\] → \[A ∪ B\]] (one automaton
        position instead of two)
    + {!choose_strategy}: anchored expressions (whose first automaton
      positions select few edges, per {!Mrpa_core.Selector.size_hint}) run
      as {!Plan.Product_bfs}, since the adjacency indices prune their
      frontier. Unanchored expressions are decided by the {e predicted
      frontier width} of the static cost analysis
      ({!Mrpa_lint.Cost.t.peak_frontier}): moderate frontiers run as the
      set-at-a-time {!Plan.Stack_machine} (batching amortises per-path
      overhead), frontiers past {!frontier_threshold} fall back to
      path-at-a-time product BFS, whose step-granular budget checkpoints
      and streaming memory survive blowups that would explode a single
      whole-level join. *)

open Mrpa_graph
open Mrpa_core

val simplify : Expr.t -> Expr.t * string list
(** Rewritten expression plus the names of rewrites that fired (in firing
    order, deduplicated). The result denotes the same path set. *)

val simplify_notes :
  Expr.t -> Expr.t * string list * Mrpa_lint.Diagnostic.t list
(** Like {!simplify}, but additionally returns one [L009] lint note per
    subexpression a rewrite proved empty (plus one when the whole query
    rewrites to [∅]). The notes carry no source span — the rewriter works
    on span-less expressions — and end up in {!Plan.t.notes}. *)

val frontier_threshold : int
(** Predicted frontier width above which an unanchored query abandons
    set-at-a-time batching. *)

val choose_strategy :
  Digraph.t -> Mrpa_lint.Cost.t -> Expr.t -> Plan.strategy * string
(** Strategy and a human-readable reason, decided from the cost analysis
    of the (already simplified) expression. *)

val plan :
  ?strategy:Plan.strategy ->
  ?simple:bool ->
  ?stats:Mrpa_graph.Stat.profile ->
  max_length:int ->
  Digraph.t ->
  Expr.t ->
  Plan.t
(** Build a full plan; [?strategy] overrides the heuristic; [?simple]
    (default false) restricts results to simple paths. [?stats] supplies a
    cached degree profile for the cost analysis (computed fresh per call
    otherwise — [O(|V|+|E|)]). *)
