open Mrpa_graph
open Mrpa_core

(* One bottom-up pass; records fired rewrite names, and — when a rewrite
   {e proves} a subexpression empty — a lint note for the plan. Iterated to
   fixpoint by [simplify_notes]. *)
let rewrite_pass fired notes expr =
  let open Expr in
  let fire name result =
    fired := name :: !fired;
    result
  in
  let note_empty sub =
    let msg =
      Format.asprintf "@[subexpression %a is provably empty@]" Expr.pp sub
    in
    if not (List.mem msg !notes) then notes := !notes @ [ msg ]
  in
  let rec go : Expr.t -> Expr.t = function
    | (Empty | Epsilon | Sel _) as e -> e
    | Union (a, b) -> (
      match (go a, go b) with
      | Empty, r -> fire "union-empty" r
      | r, Empty -> fire "union-empty" r
      | Epsilon, r when Expr.nullable r -> fire "union-epsilon-nullable" r
      | r, Epsilon when Expr.nullable r -> fire "union-epsilon-nullable" r
      | r, s when Expr.equal r s -> fire "union-idempotent" r
      | Sel s1, Sel s2 -> fire "selector-fusion" (Expr.sel (Selector.union s1 s2))
      | r, s -> Union (r, s))
    | Join (a, b) -> (
      match (go a, go b) with
      | ((Empty, _) | (_, Empty)) as p ->
        let x, y = p in
        note_empty (Join (x, y));
        fire "join-empty" Expr.empty
      | Epsilon, r -> fire "join-epsilon" r
      | r, Epsilon -> fire "join-epsilon" r
      | Star r, Star s when Expr.equal r s -> fire "star-star-join" (Star r)
      | r, s -> Join (r, s))
    | Product (a, b) -> (
      match (go a, go b) with
      | ((Empty, _) | (_, Empty)) as p ->
        let x, y = p in
        note_empty (Product (x, y));
        fire "product-empty" Expr.empty
      | Epsilon, r -> fire "product-epsilon" r
      | r, Epsilon -> fire "product-epsilon" r
      | r, s -> Product (r, s))
    | Star a -> (
      match go a with
      | Empty -> fire "star-empty" Expr.epsilon
      | Epsilon -> fire "star-epsilon" Expr.epsilon
      | Star r -> fire "star-star" (Star r)
      | Union (Epsilon, r) -> fire "star-strip-epsilon" (Star r)
      | Union (r, Epsilon) -> fire "star-strip-epsilon" (Star r)
      | r -> Star r)
  in
  go expr

let simplify_notes expr =
  let fired = ref [] in
  let notes = ref [] in
  let rec fixpoint e =
    let e' = rewrite_pass fired notes e in
    if Expr.equal e e' then e else fixpoint e'
  in
  let result = fixpoint expr in
  let names = List.rev !fired in
  let dedup =
    List.fold_left
      (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
      [] names
  in
  let messages =
    if Expr.equal result Expr.empty && not (Expr.equal expr Expr.empty) then
      !notes @ [ "the whole query rewrites to the empty set" ]
    else !notes
  in
  let diags =
    List.map
      (fun msg ->
        Mrpa_lint.Diagnostic.make ~code:"L009"
          ~severity:Mrpa_lint.Diagnostic.Hint msg)
      messages
  in
  (result, dedup, diags)

let simplify expr =
  let result, rewrites, _ = simplify_notes expr in
  (result, rewrites)

let first_extent g expr =
  let a = Mrpa_automata.Glushkov.build expr in
  List.fold_left
    (fun acc p -> acc + Selector.size_hint g a.selector_of.(p))
    0 a.first

(* Above this predicted frontier width, whole-level path sets stop paying
   for their batching: one set-at-a-time level can blow past any budget
   checkpoint (and any memory sense) inside a single join, while the
   path-at-a-time generator polls its budget every step. Below it,
   batching amortises the per-path overhead. *)
let frontier_threshold = 65_536

let choose_strategy g cost expr =
  let module C = Mrpa_lint.Cost in
  let m = Digraph.n_edges g in
  let extent = first_extent g expr in
  let anchored_threshold = max 8 (m / 16) in
  if extent <= anchored_threshold then
    ( Plan.Product_bfs,
      Printf.sprintf "anchored start (first extent %d <= %d)" extent
        anchored_threshold )
  else
    match cost.C.peak_frontier with
    | C.Fin w when w <= frontier_threshold ->
      ( Plan.Stack_machine,
        Printf.sprintf
          "unanchored, predicted frontier %d <= %d: set-at-a-time batching"
          w frontier_threshold )
    | w ->
      ( Plan.Product_bfs,
        Printf.sprintf
          "unanchored, predicted frontier %s > %d: path-at-a-time streaming"
          (Mrpa_lint.Interval.b_to_string w) frontier_threshold )

let plan ?strategy ?(simple = false) ?stats ~max_length g expr =
  if max_length < 0 then invalid_arg "Optimizer.plan: negative max_length";
  let optimized, rewrites, notes = simplify_notes expr in
  let prof = match stats with Some p -> p | None -> Stat.profile g in
  let cost = Mrpa_lint.Cost.analyze_expr ~stats:prof g ~max_length optimized in
  let chosen, strategy_reason = choose_strategy g cost optimized in
  let p =
    {
      Plan.original = expr;
      optimized;
      strategy = chosen;
      max_length;
      simple;
      rewrites;
      strategy_reason;
      notes = notes @ Mrpa_lint.Cost.diagnostics cost;
      cost;
    }
  in
  match strategy with None -> p | Some s -> Plan.with_strategy p s
