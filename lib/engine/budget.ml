open Mrpa_core

type t = {
  deadline : int64 option;  (* absolute, on the monotonic clock *)
  fuel : int option;
  max_live : int option;
  mutable cancelled : bool;
  mutable tripped : Guard.reason option;
  mutable checkpoints : int;
  mutable fuel_used : int;
  mutable fault : (int * Guard.reason) option;
}

let create ?deadline_ms ?fuel ?max_live () =
  (match deadline_ms with
  | Some ms when ms < 0.0 -> invalid_arg "Budget.create: negative deadline"
  | _ -> ());
  (match fuel with
  | Some f when f < 0 -> invalid_arg "Budget.create: negative fuel"
  | _ -> ());
  (match max_live with
  | Some m when m < 0 -> invalid_arg "Budget.create: negative max_live"
  | _ -> ());
  let deadline =
    Option.map
      (fun ms -> Int64.add (Metrics.now_ns ()) (Int64.of_float (ms *. 1e6)))
      deadline_ms
  in
  {
    deadline;
    fuel;
    max_live;
    cancelled = false;
    tripped = None;
    checkpoints = 0;
    fuel_used = 0;
    fault = None;
  }

let unlimited () = create ()

let with_fault_injection ~at reason b =
  if at < 1 then invalid_arg "Budget.with_fault_injection: at < 1";
  b.fault <- Some (at, reason);
  b

let cancel b = b.cancelled <- true
let cancelled b = b.cancelled

let trip b r =
  b.tripped <- Some r;
  raise (Guard.Abort r)

let poll b ~cost ~live =
  (* Once tripped, keep raising: nested evaluator loops unwind fast and a
     stale budget cannot silently admit more work. *)
  (match b.tripped with Some r -> raise (Guard.Abort r) | None -> ());
  b.checkpoints <- b.checkpoints + 1;
  (match b.fault with
  | Some (at, r) when b.checkpoints >= at -> trip b r
  | _ -> ());
  if b.cancelled then trip b Guard.Cancelled;
  (match b.deadline with
  | Some d when Int64.compare (Metrics.now_ns ()) d >= 0 ->
    trip b Guard.Deadline
  | _ -> ());
  b.fuel_used <- b.fuel_used + cost;
  (match b.fuel with
  | Some f when b.fuel_used > f -> trip b Guard.Fuel
  | _ -> ());
  match b.max_live with
  | Some m when live > m -> trip b Guard.Memory
  | _ -> ()

let guard b = { Guard.poll = (fun ~cost ~live -> poll b ~cost ~live) }
let tripped b = b.tripped
let checkpoints b = b.checkpoints
let fuel_used b = b.fuel_used

let verdict ?limit ~returned b =
  match b with
  | Some { tripped = Some r; _ } -> Err.Partial (Err.of_guard r)
  | _ -> (
    match limit with
    | Some k when returned >= k -> Err.Partial Err.Limit
    | _ -> Err.Complete)
