(** Execution metrics: the observability layer of the evaluation pipeline.

    A collector of named {e stage timers} (cumulative, remembered in first-use
    order so the parse → lint → optimize → execute pipeline prints in
    pipeline order) and named {e counters / gauges} (flat integers, printed
    and emitted name-sorted so output is stable). All timings are taken on
    the monotonic clock ([CLOCK_MONOTONIC]), never wall time, so profiles
    survive NTP adjustments and clock steps.

    Collectors are cheap to create and single-threaded, like the evaluation
    pipeline they observe. Backends that cannot see this module
    ({!Mrpa_automata.Stack_machine}, {!Mrpa_automata.Generator},
    {!Mrpa_automata.Counting}) expose plain mutable [stats] records instead;
    {!Eval} copies those into the collector under stable key names.

    Key namespaces currently emitted by the pipeline:
    - [parse] / [lint] / [optimize] / [execute] — stage timings;
    - [automaton.positions] — Glushkov positions of the compiled query;
    - [stack.*] — stack-machine pops, pushes, levels, branch and path-set
      high-water marks;
    - [bfs.*] — product-search edges scanned, paths emitted, depth and
      frontier high-water marks;
    - [pathset.peak] — peak materialised path-set cardinality;
    - [result.paths] — distinct paths returned;
    - [lint.findings] — diagnostics reported by the static analyzer;
    - [budget.*] — governed runs only: [budget.checkpoints] polls observed,
      [budget.fuel_used] total cost charged, and [budget.stopped.<reason>]
      ([deadline]/[fuel]/[memory]/[cancelled]) set when a bound tripped. *)

type t

val create : unit -> t

(** {1 Monotonic clock} *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock. Only differences are meaningful. *)

val elapsed_ns : since:int64 -> int64
(** [elapsed_ns ~since:(now_ns ())] measures an interval. *)

val ns_to_ms : int64 -> float

(** {1 Stage timers} *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, adding its elapsed monotonic time to the named stage
    (cumulative across calls; recorded even if the thunk raises). *)

val add_stage_ns : t -> string -> int64 -> unit
(** Add a pre-measured interval (clamped at 0) to a stage. *)

val stage_ns : t -> string -> int64 option
val stages : t -> (string * int64) list
(** All stages in first-use order. *)

(** {1 Counters and gauges} *)

val incr : ?by:int -> t -> string -> unit
val set : t -> string -> int -> unit

val set_max : t -> string -> int -> unit
(** High-water gauge: keep the maximum of all observations. *)

val counter : t -> string -> int option
val counters : t -> (string * int) list
(** All counters, name-sorted. *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** EXPLAIN-ANALYZE-style text: stage timings in ms, then counters. *)

val schema_version : string
(** The [schema] field of {!to_json}: ["mrpa.profile/1"]. *)

val to_json : t -> string
(** [{"schema":"mrpa.profile/1","stages":[{"stage":s,"ns":n},…],
      "counters":{name:value,…}}] — stages in pipeline order with integer
    nanoseconds, counters name-sorted. *)

val escape_string : string -> string
(** RFC 8259 JSON string literal (with quotes) for an OCaml string. *)
