(** Physical plans for regular path queries.

    A plan fixes the rewritten expression, the evaluation strategy and the
    length bound. Plans are produced by {!Optimizer.plan} and executed by
    {!Eval.run}. *)

open Mrpa_core

type strategy =
  | Reference
      (** structural evaluation of the algebra ({!Mrpa_core.Expr.denote});
          the semantics, verbatim. Exponential on large graphs — kept as the
          oracle and for tiny inputs. *)
  | Stack_machine
      (** the paper's §IV-B set-at-a-time generator
          ({!Mrpa_automata.Stack_machine}): whole path sets advance join by
          join. Strong on unanchored traversals where batching pays. *)
  | Product_bfs
      (** path-at-a-time product-graph search
          ({!Mrpa_automata.Generator}): strong on anchored queries where the
          adjacency indices prune the frontier. *)

type t = {
  original : Expr.t;  (** as parsed / supplied. *)
  optimized : Expr.t;  (** after {!Optimizer.simplify}. *)
  strategy : strategy;
  max_length : int;  (** length bound for star unrolling. *)
  simple : bool;
      (** restrict results to simple paths (no repeated vertex), per the
          paper's ref. \[8\]. Product-BFS prunes during search; the other
          strategies filter afterwards. *)
  rewrites : string list;  (** names of rewrites that fired, in order. *)
  strategy_reason : string;  (** why the strategy was chosen. *)
  notes : Mrpa_lint.Diagnostic.t list;
      (** lint notes attached by the optimiser: a rewrite proving a
          subexpression empty ([L009]), plus any cost-analysis findings on
          the optimised form ([L010]/[L011]/[L013]). Rendered by {!pp}
          when nonempty. *)
  cost : Mrpa_lint.Cost.t;
      (** the static cost/cardinality analysis of [optimized] at
          [max_length] — what {!Optimizer.plan} chose the strategy from;
          rendered by {!pp} as the cost table. *)
}

val strategy_name : strategy -> string

val strategy_of_string : string -> strategy option
(** Inverse of {!strategy_name}, also accepting the CLI short forms
    ["stack"] and ["bfs"]. *)

val with_strategy : t -> strategy -> t
(** Override the planner's strategy choice, recording "forced by caller"
    as the reason. A constant-time record update — this is what lets the
    server's compiled-plan cache ignore per-request strategy overrides in
    its key and apply them on the way out instead. *)

val pp : Format.formatter -> t -> unit
(** Multi-line EXPLAIN-style rendering with raw integer ids. *)

val pp_named : Mrpa_graph.Digraph.t -> Format.formatter -> t -> unit
(** Like {!pp} but resolving vertex and label names through the graph. *)
