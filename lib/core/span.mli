(** Byte-offset source spans.

    A span [{start; stop}] designates the half-open byte range
    [\[start, stop)] of a query string. Spans are attached to the nodes of
    the {!Spanned} AST by the parser so that diagnostics (parse errors,
    lint findings) can point back into the source text. *)

type t = { start : int; stop : int }

val make : start:int -> stop:int -> t
(** Raises [Invalid_argument] when [stop < start]. *)

val dummy : t
(** The absent span, used for programmatically built expressions
    ({!Spanned.of_expr}). Renderers skip it. *)

val is_dummy : t -> bool

val point : int -> t
(** One-byte span at the given offset (parse-error carets). *)

val length : t -> int
(** [0] for {!dummy}. *)

val cover : t -> t -> t
(** Smallest span containing both; {!dummy} is the identity. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
