(** Regular path expressions over the alphabet [E] (paper, §IV-A).

    Following the paper: [∅], [ε] and any edge set are regular expressions;
    if [R] and [Q] are regular expressions then so are [R ∪ Q], [R ./∘ Q]
    and [R*]. The common derived forms are included ([R+ = R ./∘ R*],
    [R? = R ∪ {ε}], [Rⁿ = R ./∘ … ./∘ R], footnote 8), as is the
    concatenative product [×∘] for potentially disjoint paths (footnote 7).

    The alphabet positions are {!Selector} values, which is exactly the
    paper's convention of labeling automaton transitions with edge {e sets}
    and testing set membership rather than symbol equality (footnote 9). *)

open Mrpa_graph

type t =
  | Empty  (** [∅]: recognises nothing. *)
  | Epsilon  (** recognises exactly [{ε}]. *)
  | Sel of Selector.t  (** one edge drawn from the selector's edge set. *)
  | Union of t * t  (** [R ∪ Q]. *)
  | Join of t * t  (** [R ./∘ Q]: joint concatenation. *)
  | Product of t * t  (** [R ×∘ Q]: concatenation without adjacency. *)
  | Star of t  (** [R*]: zero or more joint repetitions. *)

(** {1 Constructors} *)

val empty : t
val epsilon : t
val sel : Selector.t -> t

val edge : Edge.t -> t
(** [{e}] as an expression. *)

val union : t -> t -> t
val join : t -> t -> t
val product : t -> t -> t
val star : t -> t

val plus : t -> t
(** [R+ ≡ R ./∘ R*]. *)

val opt : t -> t
(** [R? ≡ R ∪ {ε}]. *)

val repeat : t -> int -> t
(** [Rⁿ]: [n]-fold joint concatenation; [repeat r 0 = epsilon]. Raises
    [Invalid_argument] for negative [n]. *)

val repeat_range : t -> min:int -> max:int -> t
(** [R{min,max}]: between [min] and [max] joint repetitions. *)

val union_of : t list -> t
(** [union_of []] is [Empty]. *)

val join_of : t list -> t
(** [join_of []] is [Epsilon]. *)

(** {1 Structure} *)

val nullable : t -> bool
(** Does the expression recognise [ε]? *)

val uses_product : t -> bool
(** Does any [×∘] occur? (Recognisers pick strategies on this: pure-join
    expressions admit the automaton fast paths.) *)

val selectors : t -> Selector.t list
(** Distinct selectors in first-occurrence order — the expression's
    alphabet. *)

val size : t -> int
(** Number of AST nodes. *)

val depth : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Paper-style rendering: [∪] as [|], [./∘] as [ . ], [×∘] as [ >< ],
    postfix [*]. *)

val pp_named : Digraph.t -> Format.formatter -> t -> unit

(** {1 Reference semantics}

    The denotational evaluator below is the executable form of the paper's
    definitions and serves as the oracle for every recogniser and generator
    strategy in {!Mrpa_automata}. It is exponential in the worst case; the
    engine exists because of that. *)

val denote : ?guard:Guard.t -> Digraph.t -> max_length:int -> t -> Path_set.t
(** [denote g ~max_length r]: every path of length at most [max_length]
    denoted by [r] over the edge universe of [g]. Exact: bounding each
    subexpression by [max_length] and filtering loses no path of admissible
    length, because every factor of a path is no longer than the path.

    With [?guard] the evaluation polls once per expression node (fuel cost
    1) and once per combining node with the cardinality it materialised, so
    a resource governor can abort the run ({!Guard.Abort}). The exception
    propagates to the caller: a bottom-up set evaluation has no sound
    partial answer of its own — the engine recovers one by iterative
    deepening over [max_length]. *)

module Dsl : sig
  (** Infix sugar for building expressions in examples and tests:
      [(sel a) <.> (sel b) <|> e] etc. *)

  val ( <|> ) : t -> t -> t
  (** {!union}. *)

  val ( <.> ) : t -> t -> t
  (** {!join}. *)

  val ( >< ) : t -> t -> t
  (** {!product}. *)

  val star : t -> t
  val plus : t -> t
  val opt : t -> t
  val ( ^^ ) : t -> int -> t
  (** {!repeat}. *)
end
