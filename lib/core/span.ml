type t = { start : int; stop : int }

let make ~start ~stop =
  if stop < start then invalid_arg "Span.make: stop < start";
  { start; stop }

let dummy = { start = -1; stop = -1 }
let is_dummy s = s.start < 0
let point p = { start = p; stop = p + 1 }
let length s = if is_dummy s then 0 else s.stop - s.start

let cover a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { start = min a.start b.start; stop = max a.stop b.stop }

let compare a b =
  let c = Int.compare a.start b.start in
  if c <> 0 then c else Int.compare a.stop b.stop

let equal a b = compare a b = 0

let pp fmt s =
  if is_dummy s then Format.pp_print_string fmt "<no-span>"
  else Format.fprintf fmt "%d-%d" s.start s.stop
