(** Sets of paths — [P(E{^*})] — with the paper's three binary operations (§II):
    union [∪], concatenative join [./∘] and concatenative product [×∘].

    The concatenative join only concatenates pairs whose boundary is joint:
    [A ./∘ B = { a ∘ b | a ∈ A, b ∈ B, (a = ε ∨ b = ε ∨ γ⁺(a) = γ⁻(b)) }]
    — the θ-equijoin of the relational algebra specialised to adjacency. The
    concatenative product drops the side condition and may create disjoint
    paths ("teleportation", footnote 5). *)

open Mrpa_graph

type t = Path.Set.t

(** {1 Construction} *)

val empty : t
(** [∅]. *)

val epsilon : t
(** [{ε}] — the identity for both [./∘] and [×∘]. *)

val singleton : Path.t -> t
val of_list : Path.t list -> t

val of_edges : Edge.t list -> t
(** Each edge as a length-1 path (recall [E ⊂ E*]). *)

val of_edge_set : Edge.Set.t -> t

val all_edges : Digraph.t -> t
(** The edge set [E] of a graph, as paths. *)

val select : Digraph.t -> Selector.t -> t
(** Paths of the edges matched by a selector — the restricted join operands
    [A, B ⊆ E] of §III. *)

(** {1 The paper's operations} *)

val union : t -> t -> t
(** [∪]. *)

val join : t -> t -> t
(** [./∘] — concatenative join. Associative, not commutative; [epsilon] is
    its identity and [empty] annihilates. *)

val product : t -> t -> t
(** [×∘] — concatenative (Cartesian) product; concatenates all pairs,
    including disjoint ones. [join a b] is always a subset of
    [product a b]. *)

(** {1 Derived operators} *)

val join_power : t -> int -> t
(** [join_power a n] is [a ./∘ … ./∘ a] ([n] copies); [n = 0] gives
    [epsilon]. Raises [Invalid_argument] for negative [n]. *)

val product_power : t -> int -> t

val star_bounded : t -> max_length:int -> t
(** Bounded Kleene star over [./∘]: all paths of length at most [max_length]
    expressible as a joint concatenation of zero or more members. *)

val filter : (Path.t -> bool) -> t -> t

val restrict_source : Vertex.Set.t -> t -> t
(** Keep paths whose tail vertex [γ⁻] lies in the set ([ε] never kept). *)

val restrict_dest : Vertex.Set.t -> t -> t

val restrict_joint : t -> t
(** Keep only joint paths (Definition 3). *)

val restrict_simple : t -> t
(** Keep only simple paths (no repeated vertex — the regular {e simple}
    paths of the paper's ref. [8]). *)

val endpoint_pairs : t -> (Vertex.t * Vertex.t) list
(** Deduplicated [(γ⁻(a), γ⁺(a))] over non-empty members — the projection
    that builds [E_αβ] in §IV-C. *)

val truncate : int -> t -> t
(** [truncate k s] keeps the [k] least members in set order ([s] itself when
    [cardinal s <= k]), stopping the walk as soon as [k] members are taken —
    the LIMIT clause's truncation. Raises [Invalid_argument] for negative
    [k]. *)

(** {1 Set plumbing} *)

val is_empty : t -> bool
val add : Path.t -> t -> t
val mem : Path.t -> t -> bool
val cardinal : t -> int
val elements : t -> Path.t list
val equal : t -> t -> bool
val subset : t -> t -> bool
val inter : t -> t -> t
val diff : t -> t -> t
val fold : (Path.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc
val iter : (Path.t -> unit) -> t -> unit

val max_length : t -> int
(** Length of the longest member ([0] on [empty]). *)

val pp : Format.formatter -> t -> unit
val pp_named : Digraph.t -> Format.formatter -> t -> unit
