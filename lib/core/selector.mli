(** Edge-set selectors: the set-builder notation of the paper's §IV-A.

    A selector denotes a subset of a graph's edge set [E]. The paper writes
    [\[i, _, _\]] for all edges emanating from [i], [\[_, α, _\]] for all
    edges labeled [α], [\[_, _, j\]] for all edges terminating at [j],
    [\[_, _, _\]] for [E] itself, and braces for explicit edge sets such as
    [{(j,α,i)}]. Selectors generalise each position from a single value to a
    set of admissible values and close the notation under union,
    intersection and difference.

    Selectors are pure descriptions: they can be {!matches}-tested against a
    single edge, or {!enumerate}d against a graph using its indices. *)

open Mrpa_graph

type t =
  | Pattern of {
      src : Vertex.Set.t option;  (** admissible tails; [None] = wildcard *)
      lbl : Label.Set.t option;  (** admissible labels; [None] = wildcard *)
      dst : Vertex.Set.t option;  (** admissible heads; [None] = wildcard *)
    }
  | Explicit of Edge.Set.t  (** a literal edge set, e.g. [{(j,α,i)}] *)
  | Union of t * t
  | Inter of t * t
  | Diff of t * t

(** {1 Constructors} *)

val universe : t
(** [\[_, _, _\]] — all of [E]. *)

val pattern :
  ?src:Vertex.Set.t -> ?lbl:Label.Set.t -> ?dst:Vertex.Set.t -> unit -> t

val src_in : Vertex.Set.t -> t
(** [\[Vs, _, _\]]: tails restricted to a set — the source-traversal
    restriction of §III-B. *)

val dst_in : Vertex.Set.t -> t
(** [\[_, _, Vd\]]: §III-C destination restriction. *)

val label_in : Label.Set.t -> t
(** [\[_, Ωe, _\]]: §III-D label restriction. *)

val src1 : Vertex.t -> t
(** [\[i, _, _\]]. *)

val dst1 : Vertex.t -> t
(** [\[_, _, j\]]. *)

val label1 : Label.t -> t
(** [\[_, α, _\]]. *)

val edge : Edge.t -> t
(** [{e}]. *)

val edges : Edge.Set.t -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val complement : t -> t
(** [E \ s] — e.g. the [V \ Vs] idiom of §III-B lifted to edge sets. *)

(** {1 Semantics} *)

val matches : t -> Edge.t -> bool
(** Pure membership test (graph-independent: a [Pattern] or [Explicit]
    selector either admits the edge or not). *)

val enumerate : Digraph.t -> t -> Edge.t list
(** All edges of the graph matched by the selector, each exactly once, using
    the cheapest available index (out-adjacency for anchored sources,
    in-adjacency for anchored destinations, the label index for labeled
    patterns). Explicit edges are intersected with [E]. *)

val enumerate_set : Digraph.t -> t -> Edge.Set.t

val select_out : Digraph.t -> t -> Vertex.t -> Edge.t list
(** Out-edges of one vertex matched by the selector — the inner step of the
    product-graph generator. *)

val select_in : Digraph.t -> t -> Vertex.t -> Edge.t list

val size_hint : Digraph.t -> t -> int
(** Cheap upper bound on [|enumerate g s|]; used by the planner to order
    joins. Never underestimates. *)

(** {1 Structure} *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Paper-style rendering with raw ids, e.g. [\[3, {0,1}, _\]]. *)

val pp_named : Digraph.t -> Format.formatter -> t -> unit
