open Mrpa_graph

let check_length length =
  if length < 0 then invalid_arg "Traversal: negative length"

let steps g selectors =
  List.fold_left
    (fun acc sel -> Path_set.join acc (Path_set.select g sel))
    Path_set.epsilon selectors

let repeat x n = List.init n (fun _ -> x)

let complete g ~length =
  check_length length;
  steps g (repeat Selector.universe length)

let source g ~from ~length =
  check_length length;
  if length = 0 then Path_set.epsilon
  else steps g (Selector.src_in from :: repeat Selector.universe (length - 1))

let destination g ~into ~length =
  check_length length;
  if length = 0 then Path_set.epsilon
  else steps g (repeat Selector.universe (length - 1) @ [ Selector.dst_in into ])

let between g ~from ~into ~length =
  check_length length;
  if length = 0 then Path_set.epsilon
  else if length = 1 then
    steps g [ Selector.pattern ~src:from ~dst:into () ]
  else
    steps g
      (Selector.src_in from
      :: (repeat Selector.universe (length - 2) @ [ Selector.dst_in into ]))

let labeled g ~labels = steps g (List.map Selector.label_in labels)

let steps_planned g selectors =
  match selectors with
  | [] -> Path_set.epsilon
  | _ ->
    let arr = Array.of_list selectors in
    let n = Array.length arr in
    let pivot = ref 0 in
    Array.iteri
      (fun idx sel ->
        if Selector.size_hint g sel < Selector.size_hint g arr.(!pivot) then
          pivot := idx)
      arr;
    let sets = Array.map (fun sel -> Path_set.select g sel) arr in
    (* grow outward from the pivot; associativity of ./∘ makes any order
       valid *)
    let acc = ref sets.(!pivot) in
    let left = ref (!pivot - 1) in
    let right = ref (!pivot + 1) in
    while !left >= 0 || !right < n do
      (* prefer the smaller neighbouring step next *)
      let take_left =
        !left >= 0
        && (!right >= n
           || Selector.size_hint g arr.(!left) <= Selector.size_hint g arr.(!right))
      in
      if take_left then begin
        acc := Path_set.join sets.(!left) !acc;
        decr left
      end
      else begin
        acc := Path_set.join !acc sets.(!right);
        incr right
      end
    done;
    !acc

let complement_vertices g vs =
  List.fold_left
    (fun acc v -> if Vertex.Set.mem v vs then acc else Vertex.Set.add v acc)
    Vertex.Set.empty (Digraph.vertices g)

let neighbourhood g ~from ~length =
  check_length length;
  if length = 0 then from
  else
  let paths = source g ~from ~length in
  Path_set.fold
    (fun p acc ->
      match Path.head p with Some v -> Vertex.Set.add v acc | None -> acc)
    paths Vertex.Set.empty
