open Mrpa_graph

type t =
  | Empty
  | Epsilon
  | Sel of Selector.t
  | Union of t * t
  | Join of t * t
  | Product of t * t
  | Star of t

let empty = Empty
let epsilon = Epsilon
let sel s = Sel s
let edge e = Sel (Selector.edge e)
let union a b = Union (a, b)
let join a b = Join (a, b)
let product a b = Product (a, b)
let star r = Star r
let plus r = Join (r, Star r)
let opt r = Union (r, Epsilon)

let repeat r n =
  if n < 0 then invalid_arg "Expr.repeat: negative count";
  let rec go acc k = if k = 0 then acc else go (Join (acc, r)) (k - 1) in
  if n = 0 then Epsilon else go r (n - 1)

let repeat_range r ~min ~max =
  if min < 0 || max < min then invalid_arg "Expr.repeat_range: bad bounds";
  let tail = List.init (max - min) (fun _ -> opt r) in
  List.fold_left join (repeat r min) tail

let union_of = function
  | [] -> Empty
  | r :: rest -> List.fold_left union r rest

let join_of = function
  | [] -> Epsilon
  | r :: rest -> List.fold_left join r rest

let rec nullable = function
  | Empty -> false
  | Epsilon -> true
  | Sel _ -> false
  | Union (a, b) -> nullable a || nullable b
  | Join (a, b) | Product (a, b) -> nullable a && nullable b
  | Star _ -> true

let rec uses_product = function
  | Empty | Epsilon | Sel _ -> false
  | Union (a, b) | Join (a, b) -> uses_product a || uses_product b
  | Product _ -> true
  | Star a -> uses_product a

let selectors r =
  let seen = ref [] in
  let add s = if not (List.exists (Selector.equal s) !seen) then seen := s :: !seen in
  let rec go = function
    | Empty | Epsilon -> ()
    | Sel s -> add s
    | Union (a, b) | Join (a, b) | Product (a, b) ->
      go a;
      go b
    | Star a -> go a
  in
  go r;
  List.rev !seen

let rec size = function
  | Empty | Epsilon | Sel _ -> 1
  | Union (a, b) | Join (a, b) | Product (a, b) -> 1 + size a + size b
  | Star a -> 1 + size a

let rec depth = function
  | Empty | Epsilon | Sel _ -> 1
  | Union (a, b) | Join (a, b) | Product (a, b) -> 1 + max (depth a) (depth b)
  | Star a -> 1 + depth a

let rec compare r1 r2 =
  let rank = function
    | Empty -> 0
    | Epsilon -> 1
    | Sel _ -> 2
    | Union _ -> 3
    | Join _ -> 4
    | Product _ -> 5
    | Star _ -> 6
  in
  match (r1, r2) with
  | Empty, Empty | Epsilon, Epsilon -> 0
  | Sel a, Sel b -> Selector.compare a b
  | Union (a1, b1), Union (a2, b2)
  | Join (a1, b1), Join (a2, b2)
  | Product (a1, b1), Product (a2, b2) ->
    let c = compare a1 a2 in
    if c <> 0 then c else compare b1 b2
  | Star a, Star b -> compare a b
  | _ -> Int.compare (rank r1) (rank r2)

let equal a b = compare a b = 0

let pp_generic pp_selector fmt r =
  let rec go fmt = function
    | Empty -> Format.pp_print_string fmt "\xE2\x88\x85" (* ∅ *)
    | Epsilon -> Format.pp_print_string fmt "\xCE\xB5" (* ε *)
    | Sel s -> pp_selector fmt s
    | Union (a, b) -> Format.fprintf fmt "(%a | %a)" go a go b
    | Join (a, b) -> Format.fprintf fmt "(%a . %a)" go a go b
    | Product (a, b) -> Format.fprintf fmt "(%a >< %a)" go a go b
    | Star a -> Format.fprintf fmt "%a*" go a
  in
  go fmt r

let pp fmt r = pp_generic Selector.pp fmt r
let pp_named g fmt r = pp_generic (Selector.pp_named g) fmt r

let denote ?(guard = Guard.none) g ~max_length r =
  if max_length < 0 then invalid_arg "Expr.denote: negative max_length";
  let cap s = Path_set.filter (fun p -> Path.length p <= max_length) s in
  (* One poll per node keeps fuel proportional to expression size; the
     combining nodes additionally report the cardinality they just
     materialised so memory budgets see the blowup as it happens. *)
  let built s =
    guard.Guard.poll ~cost:0 ~live:(Path_set.cardinal s);
    s
  in
  let rec go r =
    guard.Guard.poll ~cost:1 ~live:0;
    match r with
    | Empty -> Path_set.empty
    | Epsilon -> Path_set.epsilon
    | Sel s -> cap (Path_set.select g s)
    | Union (a, b) -> built (Path_set.union (go a) (go b))
    | Join (a, b) -> built (cap (Path_set.join (go a) (go b)))
    | Product (a, b) -> built (cap (Path_set.product (go a) (go b)))
    | Star a -> built (Path_set.star_bounded (go a) ~max_length)
  in
  go r

module Dsl = struct
  let ( <|> ) = union
  let ( <.> ) = join
  let ( >< ) = product
  let star = star
  let plus = plus
  let opt = opt
  let ( ^^ ) = repeat
end
