(** The basic traversal idioms of the paper's §III, expressed as restricted
    iterated concatenative joins.

    Each function materialises the full path set; lengths are exact (a
    traversal of [length n] joins [n] edge sets and yields only length-[n]
    paths, as in the paper). For streaming evaluation of long traversals use
    {!Mrpa_engine.Eval}. *)

open Mrpa_graph

val complete : Digraph.t -> length:int -> Path_set.t
(** §III-A: all joint paths of exactly [length] edges —
    [E ./∘ … ./∘ E] ([length] copies). [length = 0] gives [{ε}]. *)

val source : Digraph.t -> from:Vertex.Set.t -> length:int -> Path_set.t
(** §III-B: joint paths of [length] edges emanating from [from] —
    [A ./∘ E ./∘ … ./∘ E] with [A = {e ∈ E | γ⁻(e) ∈ Vs}]. When
    [from = V] this degenerates to {!complete}. *)

val destination : Digraph.t -> into:Vertex.Set.t -> length:int -> Path_set.t
(** §III-C: joint paths of [length] edges terminating in [into]. *)

val between :
  Digraph.t -> from:Vertex.Set.t -> into:Vertex.Set.t -> length:int -> Path_set.t
(** §III combined: emanate from [from] {e and} arrive in [into]. *)

val labeled : Digraph.t -> labels:Label.Set.t list -> Path_set.t
(** §III-D: one label set per step; the path length equals the number of
    steps and the n-th edge's label must lie in the n-th set. *)

val steps : Digraph.t -> Selector.t list -> Path_set.t
(** The general restricted traversal: one selector per step, joined left to
    right. Subsumes all of the above and the "pass through a particular
    vertex set at step k" idiom (give step k a source- or
    destination-restricted selector). [steps g \[\] = {ε}]. *)

val steps_planned : Digraph.t -> Selector.t list -> Path_set.t
(** Same result as {!steps}, different join order: the evaluation starts at
    the most selective step (smallest {!Selector.size_hint}) and grows the
    partial paths outward, joining left- and right-neighbouring steps onto
    the pivot. Because [./∘] is associative (§II), any order yields the
    same set; starting at a restrictive step keeps intermediate sets small
    — the §III observation that restriction should happen {e early}, made
    into a plan. EXP-T3b measures the difference. *)

val complement_vertices : Digraph.t -> Vertex.Set.t -> Vertex.Set.t
(** [V \ Vs] — the "where not to start" convenience of §III-B. *)

val neighbourhood :
  Digraph.t -> from:Vertex.Set.t -> length:int -> Vertex.Set.t
(** Heads of all paths produced by {!source}: the vertices reachable in
    exactly [length] steps. [length = 0] returns [from] itself. *)
