(** Span-carrying regular path expressions.

    A parallel AST to {!Expr.t} in which every node records the byte range
    of the source text it was parsed from ({!Span.t}). The parser
    ([Mrpa_engine.Parser.parse_spanned]) produces this tree; the static
    analyzer ([Mrpa_lint]) consumes it so that every diagnostic can point
    back into the query string. [strip] recovers the plain expression —
    for a parsed tree, [strip] is structurally identical to what
    [Parser.parse] returns. *)

open Mrpa_graph

type t = { node : node; span : Span.t }

and node =
  | Empty
  | Epsilon
  | Sel of Selector.t
  | Union of t * t
  | Join of t * t
  | Product of t * t
  | Star of t

val mk : Span.t -> node -> t
val with_span : Span.t -> t -> t

val strip : t -> Expr.t
(** Forget the spans. *)

val of_expr : ?span:Span.t -> Expr.t -> t
(** Annotate every node with [span] (default {!Span.dummy}) — for running
    the analyzer on programmatically built expressions. *)

(** {1 Derived forms}

    Mirrors of {!Expr.plus}, {!Expr.opt}, {!Expr.repeat} and
    {!Expr.repeat_range}: same node structure, every introduced node tagged
    with [span]. *)

val plus : span:Span.t -> t -> t
val opt : span:Span.t -> t -> t
val repeat : span:Span.t -> t -> int -> t
val repeat_range : span:Span.t -> t -> min:int -> max:int -> t

(** {1 Traversal} *)

val subterms : t -> t list
(** Every node of the tree, preorder. *)

val sel_occurrences : t -> (Span.t * Selector.t) list
(** [Sel] leaves left to right — the order in which the Glushkov
    construction numbers automaton positions, so element [i] of this list
    is position [i + 1] of [Mrpa_automata.Glushkov.build (strip e)]. *)

val pp : Format.formatter -> t -> unit
val pp_named : Digraph.t -> Format.formatter -> t -> unit
