type t = { node : node; span : Span.t }

and node =
  | Empty
  | Epsilon
  | Sel of Selector.t
  | Union of t * t
  | Join of t * t
  | Product of t * t
  | Star of t

let mk span node = { node; span }
let with_span span e = { e with span }

let rec strip e =
  match e.node with
  | Empty -> Expr.Empty
  | Epsilon -> Expr.Epsilon
  | Sel s -> Expr.Sel s
  | Union (a, b) -> Expr.Union (strip a, strip b)
  | Join (a, b) -> Expr.Join (strip a, strip b)
  | Product (a, b) -> Expr.Product (strip a, strip b)
  | Star a -> Expr.Star (strip a)

let rec of_expr ?(span = Span.dummy) (e : Expr.t) =
  let sub x = of_expr ~span x in
  match e with
  | Expr.Empty -> mk span Empty
  | Expr.Epsilon -> mk span Epsilon
  | Expr.Sel s -> mk span (Sel s)
  | Expr.Union (a, b) -> mk span (Union (sub a, sub b))
  | Expr.Join (a, b) -> mk span (Join (sub a, sub b))
  | Expr.Product (a, b) -> mk span (Product (sub a, sub b))
  | Expr.Star a -> mk span (Star (sub a))

(* Derived forms mirror the [Expr] combinators node for node, so that
   [strip] of a parsed spanned tree is structurally identical to what the
   span-less parser used to build. *)

let plus ~span r = mk span (Join (r, mk span (Star r)))
let opt ~span r = mk span (Union (r, mk span Epsilon))

let repeat ~span r n =
  if n < 0 then invalid_arg "Spanned.repeat: negative count";
  let rec go acc k = if k = 0 then acc else go (mk span (Join (acc, r))) (k - 1) in
  if n = 0 then mk span Epsilon else go r (n - 1)

let repeat_range ~span r ~min ~max =
  if min < 0 || max < min then invalid_arg "Spanned.repeat_range: bad bounds";
  let tail = List.init (max - min) (fun _ -> opt ~span r) in
  List.fold_left (fun acc o -> mk span (Join (acc, o))) (repeat ~span r min) tail

let subterms e =
  let acc = ref [] in
  let rec go e =
    acc := e :: !acc;
    match e.node with
    | Empty | Epsilon | Sel _ -> ()
    | Union (a, b) | Join (a, b) | Product (a, b) ->
      go a;
      go b
    | Star a -> go a
  in
  go e;
  List.rev !acc

(* Left-to-right [Sel] occurrences — the same order in which
   [Mrpa_automata.Glushkov.build] numbers positions, so index [i] here is
   position [i + 1] there. *)
let sel_occurrences e =
  let acc = ref [] in
  let rec go e =
    match e.node with
    | Empty | Epsilon -> ()
    | Sel s -> acc := (e.span, s) :: !acc
    | Union (a, b) | Join (a, b) | Product (a, b) ->
      go a;
      go b
    | Star a -> go a
  in
  go e;
  List.rev !acc

let pp fmt e = Expr.pp fmt (strip e)
let pp_named g fmt e = Expr.pp_named g fmt (strip e)
