type reason = Deadline | Fuel | Memory | Cancelled

exception Abort of reason

type t = { poll : cost:int -> live:int -> unit }

let none = { poll = (fun ~cost:_ ~live:_ -> ()) }

let reason_name = function
  | Deadline -> "deadline"
  | Fuel -> "fuel"
  | Memory -> "memory"
  | Cancelled -> "cancelled"
