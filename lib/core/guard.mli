(** Cooperative execution checkpoints.

    Star-closure queries denote unboundedly large path sets, so every
    evaluator in this codebase must be interruptible: at each of its natural
    checkpoints (a transition, a level, an expansion) it reports progress to
    a guard, and the guard may abort the run by raising {!Abort}. The
    evaluator is expected to catch the exception and return whatever sound
    partial answer it has banked — degrade, don't hang or OOM.

    This module is deliberately tiny and policy-free: it defines only the
    checkpoint {e protocol} shared by {!Expr.denote} and the automata
    backends. The actual resource policy — wall-clock deadline, fuel,
    memory budget, cancellation token, fault injection — lives upstream in
    the engine's [Budget] module, which manufactures {!t} values whose
    [poll] closes over its accounting state. *)

type reason =
  | Deadline  (** the wall-clock deadline passed. *)
  | Fuel  (** the transition-step budget is exhausted. *)
  | Memory  (** too many paths are live/banked at once. *)
  | Cancelled  (** someone called the cancellation token. *)

exception Abort of reason
(** Raised by a guard's [poll] to stop the run. Evaluators catch it at the
    boundary where they can still return a sound partial result; it should
    never escape to user code. *)

type t = { poll : cost:int -> live:int -> unit }
(** A checkpoint callback. Evaluators call [poll ~cost ~live] at each
    checkpoint: [cost] is the number of atomic work steps (transitions,
    edge expansions) performed since the previous poll and is charged
    against any fuel budget; [live] is the evaluator's current count of
    materialised paths (or DP configurations), checked against any memory
    budget. Pass [~live:0] at checkpoints where no fresh count is
    available — memory is judged only on reported values. *)

val none : t
(** The no-op guard: never aborts. Backends use it as the default so
    unguarded runs pay only an indirect call per checkpoint. *)

val reason_name : reason -> string
(** ["deadline" | "fuel" | "memory" | "cancelled"]. *)
