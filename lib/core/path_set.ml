open Mrpa_graph

type t = Path.Set.t

let empty = Path.Set.empty
let epsilon = Path.Set.singleton Path.empty
let singleton = Path.Set.singleton
let of_list = Path.Set.of_list

let of_edges es =
  List.fold_left (fun acc e -> Path.Set.add (Path.of_edge e) acc) empty es

let of_edge_set es =
  Edge.Set.fold (fun e acc -> Path.Set.add (Path.of_edge e) acc) es empty

let all_edges g = of_edges (Digraph.edges g)
let select g s = of_edges (Selector.enumerate g s)
let union = Path.Set.union

(* The join indexes the right operand by tail vertex so each left path only
   meets the right paths it is actually adjacent to. *)
let join a b =
  let by_tail = Vertex.Tbl.create (max 16 (Path.Set.cardinal b)) in
  let b_has_epsilon = ref false in
  Path.Set.iter
    (fun p ->
      match Path.tail p with
      | None -> b_has_epsilon := true
      | Some v ->
        let existing =
          match Vertex.Tbl.find_opt by_tail v with Some l -> l | None -> []
        in
        Vertex.Tbl.replace by_tail v (p :: existing))
    b;
  Path.Set.fold
    (fun pa acc ->
      match Path.head pa with
      | None ->
        (* a = ε joins with every b *)
        Path.Set.union acc b
      | Some h ->
        let acc = if !b_has_epsilon then Path.Set.add pa acc else acc in
        let matches =
          match Vertex.Tbl.find_opt by_tail h with Some l -> l | None -> []
        in
        List.fold_left
          (fun acc pb -> Path.Set.add (Path.concat pa pb) acc)
          acc matches)
    a empty

let product a b =
  Path.Set.fold
    (fun pa acc ->
      Path.Set.fold (fun pb acc -> Path.Set.add (Path.concat pa pb) acc) b acc)
    a empty

let join_power a n =
  if n < 0 then invalid_arg "Path_set.join_power: negative exponent";
  let rec go acc k = if k = 0 then acc else go (join acc a) (k - 1) in
  go epsilon n

let product_power a n =
  if n < 0 then invalid_arg "Path_set.product_power: negative exponent";
  let rec go acc k = if k = 0 then acc else go (product acc a) (k - 1) in
  go epsilon n

let filter = Path.Set.filter

let star_bounded a ~max_length =
  if max_length < 0 then invalid_arg "Path_set.star_bounded: negative bound";
  let cap s = filter (fun p -> Path.length p <= max_length) s in
  let a = cap a in
  let rec fixpoint acc frontier =
    let next = cap (join frontier a) in
    let fresh = Path.Set.diff next acc in
    if Path.Set.is_empty fresh then acc
    else fixpoint (Path.Set.union acc fresh) fresh
  in
  fixpoint epsilon epsilon

let restrict_source vs s =
  filter
    (fun p -> match Path.tail p with None -> false | Some v -> Vertex.Set.mem v vs)
    s

let restrict_dest vs s =
  filter
    (fun p -> match Path.head p with None -> false | Some v -> Vertex.Set.mem v vs)
    s

let restrict_joint s = filter Path.is_joint s
let restrict_simple s = filter Path.is_simple s

let endpoint_pairs s =
  let module P = Set.Make (struct
    type t = Vertex.t * Vertex.t

    let compare (a1, b1) (a2, b2) =
      let c = Vertex.compare a1 a2 in
      if c <> 0 then c else Vertex.compare b1 b2
  end) in
  let pairs =
    Path.Set.fold
      (fun p acc ->
        match (Path.tail p, Path.head p) with
        | Some t, Some h -> P.add (t, h) acc
        | None, _ | _, None -> acc)
      s P.empty
  in
  P.elements pairs

let truncate k s =
  if k < 0 then invalid_arg "Path_set.truncate: negative count";
  if Path.Set.cardinal s <= k then s
  else begin
    (* Set order, stopping after [k] elements — no intermediate list. *)
    let rec take n seq acc =
      if n = 0 then acc
      else
        match seq () with
        | Seq.Nil -> acc
        | Seq.Cons (p, rest) -> take (n - 1) rest (Path.Set.add p acc)
    in
    take k (Path.Set.to_seq s) Path.Set.empty
  end

let is_empty = Path.Set.is_empty
let add = Path.Set.add
let mem = Path.Set.mem
let cardinal = Path.Set.cardinal
let elements = Path.Set.elements
let equal = Path.Set.equal
let subset = Path.Set.subset
let inter = Path.Set.inter
let diff = Path.Set.diff
let fold = Path.Set.fold
let iter = Path.Set.iter

let max_length s = Path.Set.fold (fun p acc -> max acc (Path.length p)) s 0

let pp_generic pp_path fmt s =
  Format.pp_print_char fmt '{';
  let first = ref true in
  Path.Set.iter
    (fun p ->
      if not !first then Format.pp_print_string fmt ", ";
      first := false;
      pp_path fmt p)
    s;
  Format.pp_print_char fmt '}'

let pp fmt s = pp_generic Path.pp fmt s
let pp_named g fmt s = pp_generic (Digraph.pp_path g) fmt s
