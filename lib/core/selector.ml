open Mrpa_graph

type t =
  | Pattern of {
      src : Vertex.Set.t option;
      lbl : Label.Set.t option;
      dst : Vertex.Set.t option;
    }
  | Explicit of Edge.Set.t
  | Union of t * t
  | Inter of t * t
  | Diff of t * t

let universe = Pattern { src = None; lbl = None; dst = None }
let pattern ?src ?lbl ?dst () = Pattern { src; lbl; dst }
let src_in vs = Pattern { src = Some vs; lbl = None; dst = None }
let dst_in vs = Pattern { src = None; lbl = None; dst = Some vs }
let label_in ls = Pattern { src = None; lbl = Some ls; dst = None }
let src1 v = src_in (Vertex.Set.singleton v)
let dst1 v = dst_in (Vertex.Set.singleton v)
let label1 l = label_in (Label.Set.singleton l)
let edge e = Explicit (Edge.Set.singleton e)
let edges es = Explicit es
let union a b = Union (a, b)
let inter a b = Inter (a, b)
let diff a b = Diff (a, b)
let complement s = Diff (universe, s)

let in_opt mem set_opt x =
  match set_opt with None -> true | Some s -> mem x s

let rec matches s e =
  match s with
  | Pattern { src; lbl; dst } ->
    in_opt Vertex.Set.mem src (Edge.tail e)
    && in_opt Label.Set.mem lbl (Edge.label e)
    && in_opt Vertex.Set.mem dst (Edge.head e)
  | Explicit es -> Edge.Set.mem e es
  | Union (a, b) -> matches a e || matches b e
  | Inter (a, b) -> matches a e && matches b e
  | Diff (a, b) -> matches a e && not (matches b e)

(* Enumeration picks the most selective available index for the outermost
   pattern, then filters with [matches] for the residual constraints. *)
let rec enumerate_set g s =
  match s with
  | Explicit es -> Edge.Set.filter (Digraph.mem_edge g) es
  | Pattern { src; lbl; dst } ->
    let candidates =
      match (src, lbl, dst) with
      | Some vs, _, _ ->
        Vertex.Set.fold (fun v acc -> List.rev_append (Digraph.out_edges g v) acc) vs []
      | None, _, Some vs ->
        Vertex.Set.fold (fun v acc -> List.rev_append (Digraph.in_edges g v) acc) vs []
      | None, Some ls, None ->
        Label.Set.fold
          (fun l acc -> List.rev_append (Digraph.edges_with_label g l) acc)
          ls []
      | None, None, None -> Digraph.edges g
    in
    List.fold_left
      (fun acc e -> if matches s e then Edge.Set.add e acc else acc)
      Edge.Set.empty candidates
  | Union (a, b) -> Edge.Set.union (enumerate_set g a) (enumerate_set g b)
  | Inter (a, b) -> Edge.Set.filter (matches b) (enumerate_set g a)
  | Diff (a, b) ->
    Edge.Set.filter (fun e -> not (matches b e)) (enumerate_set g a)

let enumerate g s = Edge.Set.elements (enumerate_set g s)

let select_out g s v = List.filter (matches s) (Digraph.out_edges g v)
let select_in g s v = List.filter (matches s) (Digraph.in_edges g v)

let rec size_hint g s =
  match s with
  | Explicit es -> Edge.Set.cardinal es
  | Pattern { src; lbl; dst } ->
    let bounds = ref [ Digraph.n_edges g ] in
    (match src with
    | Some vs ->
      bounds :=
        Vertex.Set.fold (fun v acc -> acc + Digraph.out_degree g v) vs 0
        :: !bounds
    | None -> ());
    (match dst with
    | Some vs ->
      bounds :=
        Vertex.Set.fold (fun v acc -> acc + Digraph.in_degree g v) vs 0
        :: !bounds
    | None -> ());
    (match lbl with
    | Some ls ->
      bounds :=
        Label.Set.fold
          (fun l acc -> acc + List.length (Digraph.edges_with_label g l))
          ls 0
        :: !bounds
    | None -> ());
    List.fold_left min max_int !bounds
  | Union (a, b) -> size_hint g a + size_hint g b
  | Inter (a, b) -> min (size_hint g a) (size_hint g b)
  | Diff (a, _) -> size_hint g a

let compare_opt cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let rec compare s1 s2 =
  match (s1, s2) with
  | Pattern p1, Pattern p2 ->
    let c = compare_opt Vertex.Set.compare p1.src p2.src in
    if c <> 0 then c
    else
      let c = compare_opt Label.Set.compare p1.lbl p2.lbl in
      if c <> 0 then c else compare_opt Vertex.Set.compare p1.dst p2.dst
  | Pattern _, (Explicit _ | Union _ | Inter _ | Diff _) -> -1
  | Explicit _, Pattern _ -> 1
  | Explicit e1, Explicit e2 -> Edge.Set.compare e1 e2
  | Explicit _, (Union _ | Inter _ | Diff _) -> -1
  | Union _, (Pattern _ | Explicit _) -> 1
  | Union (a1, b1), Union (a2, b2) -> compare_pair (a1, b1) (a2, b2)
  | Union _, (Inter _ | Diff _) -> -1
  | Inter _, (Pattern _ | Explicit _ | Union _) -> 1
  | Inter (a1, b1), Inter (a2, b2) -> compare_pair (a1, b1) (a2, b2)
  | Inter _, Diff _ -> -1
  | Diff _, (Pattern _ | Explicit _ | Union _ | Inter _) -> 1
  | Diff (a1, b1), Diff (a2, b2) -> compare_pair (a1, b1) (a2, b2)

and compare_pair (a1, b1) (a2, b2) =
  let c = compare a1 a2 in
  if c <> 0 then c else compare b1 b2

let equal a b = compare a b = 0

let pp_set fmt pp_elt elts =
  match elts with
  | [ x ] -> pp_elt fmt x
  | _ ->
    Format.pp_print_char fmt '{';
    List.iteri
      (fun i x ->
        if i > 0 then Format.pp_print_char fmt ',';
        pp_elt fmt x)
      elts;
    Format.pp_print_char fmt '}'

let pp_position fmt pp_elt = function
  | None -> Format.pp_print_char fmt '_'
  | Some elts -> pp_set fmt pp_elt elts

let pp_with pr_v pr_l fmt s =
  let pp_v fmt v = Format.pp_print_string fmt (pr_v v) in
  let pp_l fmt l = Format.pp_print_string fmt (pr_l l) in
  let rec go fmt = function
    | Pattern { src; lbl; dst } ->
      Format.pp_print_char fmt '[';
      pp_position fmt pp_v (Option.map Vertex.Set.elements src);
      Format.pp_print_char fmt ',';
      pp_position fmt pp_l (Option.map Label.Set.elements lbl);
      Format.pp_print_char fmt ',';
      pp_position fmt pp_v (Option.map Vertex.Set.elements dst);
      Format.pp_print_char fmt ']'
    | Explicit es ->
      Format.pp_print_char fmt '{';
      List.iteri
        (fun i e ->
          if i > 0 then Format.pp_print_char fmt ',';
          Format.fprintf fmt "(%s,%s,%s)" (pr_v (Edge.tail e))
            (pr_l (Edge.label e)) (pr_v (Edge.head e)))
        (Edge.Set.elements es);
      Format.pp_print_char fmt '}'
    | Union (a, b) -> Format.fprintf fmt "(%a | %a)" go a go b
    | Inter (a, b) -> Format.fprintf fmt "(%a & %a)" go a go b
    | Diff (a, b) -> Format.fprintf fmt "(%a \\ %a)" go a go b
  in
  go fmt s

let pp fmt s = pp_with string_of_int string_of_int fmt s

let pp_named g fmt s =
  pp_with (Digraph.vertex_name g) (Digraph.label_name g) fmt s
