(** Regular expressions over the {e label} alphabet [Ω].

    The paper's §IV-A closes by noting the contrast with Mendelzon & Wood
    (ref. [8]): there "a regular expression is defined for the alphabet
    [Ω], where above, it's defined for [E]". This module implements that
    label-alphabet variant so the two can be compared (EXP-T8): a
    label expression recognises a {e joint} path by its path label
    [ω′(a) ∈ Ω*] alone, with no per-position vertex anchoring.

    Matching uses Brzozowski derivatives with smart constructors; no
    automaton is materialised. {!to_expr} embeds a label expression into the
    edge-alphabet algebra ([Lbl s ↦ \[_, s, _\]], concatenation ↦ [./∘]),
    and the embedding theorem — [accepts_path r p] iff [p] is joint and the
    embedded expression recognises [p] — is property-tested. *)

open Mrpa_graph

type t =
  | Empty
  | Epsilon
  | Lbl of Label.Set.t  (** one edge whose label lies in the set. *)
  | Union of t * t
  | Concat of t * t
  | Star of t

(** {1 Smart constructors} (normalising: [∅] and [ε] units collapse) *)

val empty : t
val epsilon : t
val lbl : Label.t -> t
val lbl_in : Label.Set.t -> t
val union : t -> t -> t
val concat : t -> t -> t
val star : t -> t
val plus : t -> t
val opt : t -> t
val repeat : t -> int -> t

(** {1 Matching} *)

val nullable : t -> bool

val derivative : t -> Label.t -> t
(** Brzozowski derivative with respect to one label. *)

val matches_word : t -> Label.t list -> bool
(** Does the label word belong to the expression's language? *)

val accepts_path : t -> Path.t -> bool
(** [accepts_path r a]: is [a] joint and [ω′(a)] in the language? ([ε] is
    accepted iff [r] is nullable — [ε] is trivially joint.) *)

(** {1 Embedding into the edge-alphabet algebra} *)

val to_expr : t -> Expr.t
(** The edge-alphabet expression recognising exactly the joint paths whose
    label word the label expression accepts. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
