open Mrpa_graph

type t =
  | Empty
  | Epsilon
  | Lbl of Label.Set.t
  | Union of t * t
  | Concat of t * t
  | Star of t

let empty = Empty
let epsilon = Epsilon
let lbl l = Lbl (Label.Set.singleton l)
let lbl_in s = if Label.Set.is_empty s then Empty else Lbl s

let rec compare r1 r2 =
  let rank = function
    | Empty -> 0
    | Epsilon -> 1
    | Lbl _ -> 2
    | Union _ -> 3
    | Concat _ -> 4
    | Star _ -> 5
  in
  match (r1, r2) with
  | Empty, Empty | Epsilon, Epsilon -> 0
  | Lbl a, Lbl b -> Label.Set.compare a b
  | Union (a1, b1), Union (a2, b2) | Concat (a1, b1), Concat (a2, b2) ->
    let c = compare a1 a2 in
    if c <> 0 then c else compare b1 b2
  | Star a, Star b -> compare a b
  | _ -> Int.compare (rank r1) (rank r2)

let equal a b = compare a b = 0

(* Smart constructors keep derivative chains small (ACI-normalising unions
   would be smaller still; unit/zero laws suffice in practice). *)
let union a b =
  match (a, b) with
  | Empty, r | r, Empty -> r
  | _ -> if equal a b then a else Union (a, b)

let concat a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, r | r, Epsilon -> r
  | _ -> Concat (a, b)

let star = function
  | Empty | Epsilon -> Epsilon
  | Star _ as r -> r
  | r -> Star r

let plus r = concat r (star r)
let opt r = union r Epsilon

let repeat r n =
  if n < 0 then invalid_arg "Label_expr.repeat: negative count";
  let rec go acc k = if k = 0 then acc else go (concat acc r) (k - 1) in
  go Epsilon n

let rec nullable = function
  | Empty -> false
  | Epsilon -> true
  | Lbl _ -> false
  | Union (a, b) -> nullable a || nullable b
  | Concat (a, b) -> nullable a && nullable b
  | Star _ -> true

let rec derivative r l =
  match r with
  | Empty | Epsilon -> Empty
  | Lbl s -> if Label.Set.mem l s then Epsilon else Empty
  | Union (a, b) -> union (derivative a l) (derivative b l)
  | Concat (a, b) ->
    let left = concat (derivative a l) b in
    if nullable a then union left (derivative b l) else left
  | Star a -> concat (derivative a l) (star a)

let matches_word r word =
  nullable (List.fold_left derivative r word)

let accepts_path r a = Path.is_joint a && matches_word r (Path.label_word a)

let rec to_expr = function
  | Empty -> Expr.empty
  | Epsilon -> Expr.epsilon
  | Lbl s -> Expr.sel (Selector.label_in s)
  | Union (a, b) -> Expr.union (to_expr a) (to_expr b)
  | Concat (a, b) -> Expr.join (to_expr a) (to_expr b)
  | Star a -> Expr.star (to_expr a)

let rec pp fmt = function
  | Empty -> Format.pp_print_string fmt "\xE2\x88\x85"
  | Epsilon -> Format.pp_print_string fmt "\xCE\xB5"
  | Lbl s ->
    Format.pp_print_char fmt '{';
    List.iteri
      (fun i l ->
        if i > 0 then Format.pp_print_char fmt ',';
        Label.pp fmt l)
      (Label.Set.elements s);
    Format.pp_print_char fmt '}'
  | Union (a, b) -> Format.fprintf fmt "(%a | %a)" pp a pp b
  | Concat (a, b) -> Format.fprintf fmt "(%a . %a)" pp a pp b
  | Star a -> Format.fprintf fmt "%a*" pp a
