open Mrpa_graph
open Mrpa_automata

type t = {
  graph : Digraph.t;
  machine : Subset.t;
  masks : int list;
  max_length : int;
  weight : Edge.t -> float;
}

let prepare ~weight graph expr ~max_length =
  if max_length < 0 then invalid_arg "Witness.prepare: negative max_length";
  let machine = Subset.make expr in
  let masks =
    List.filter (fun mask -> mask <> 0) (Subset.graph_masks machine graph)
  in
  { graph; machine; masks; max_length; weight }

(* Candidate (edge, adjacency) continuations from a configuration; vertex
   [-1] is the pre-first-edge state. *)
let candidates t state vertex =
  if vertex < 0 then List.map (fun e -> (e, true)) (Digraph.edges t.graph)
  else begin
    let v = Vertex.of_int vertex in
    let local = List.map (fun e -> (e, true)) (Digraph.out_edges t.graph v) in
    if Subset.has_live_free_step t.machine state ~masks:t.masks then
      local
      @ List.filter_map
          (fun e ->
            if Vertex.equal (Edge.tail e) v then None else Some (e, false))
          (Digraph.edges t.graph)
    else local
  end

(* Minimal suffix cost from (state, vertex) to acceptance (at [target] when
   given) within [remaining] further edges. infinity = unreachable. *)
let solve t ~target =
  let memo : (int * int * int, float) Hashtbl.t = Hashtbl.create 256 in
  let rec suffix state vertex remaining =
    match Hashtbl.find_opt memo (state, vertex, remaining) with
    | Some c -> c
    | None ->
      (* break cycles defensively: remaining strictly decreases, so plain
         recursion terminates; memoise after computing. *)
      let stop_here =
        if
          Subset.accepting t.machine state
          && (match target with None -> true | Some v -> vertex = Vertex.to_int v)
          && vertex >= 0
        then 0.0
        else infinity
      in
      let best = ref stop_here in
      if remaining > 0 then
        List.iter
          (fun (e, adj) ->
            let mask = Subset.mask_of_edge t.machine e in
            if mask <> 0 then begin
              let state' = Subset.step t.machine state ~mask ~adj in
              if not (Subset.is_dead t.machine state') then begin
                let c =
                  t.weight e
                  +. suffix state' (Vertex.to_int (Edge.head e)) (remaining - 1)
                in
                if c < !best then best := c
              end
            end)
          (candidates t state vertex);
      Hashtbl.add memo (state, vertex, remaining) !best;
      !best
  in
  suffix

let reconstruct t ~source ~target =
  let suffix = solve t ~target in
  let initial = Subset.initial t.machine in
  (* choose the best first edge (respecting the source anchor) *)
  let first_candidates =
    match source with
    | Some v -> List.map (fun e -> (e, true)) (Digraph.out_edges t.graph v)
    | None -> List.map (fun e -> (e, true)) (Digraph.edges t.graph)
  in
  let step_cost state _vertex remaining (e, adj) =
    let mask = Subset.mask_of_edge t.machine e in
    if mask = 0 then None
    else begin
      let state' = Subset.step t.machine state ~mask ~adj in
      if Subset.is_dead t.machine state' then None
      else
        let c =
          t.weight e +. suffix state' (Vertex.to_int (Edge.head e)) remaining
        in
        if c = infinity then None else Some (e, state', c)
    end
  in
  let options =
    List.filter_map
      (fun cand -> step_cost initial (-1) (t.max_length - 1) cand)
      (if t.max_length >= 1 then first_candidates else [])
  in
  match
    List.fold_left
      (fun acc ((_, _, c) as o) ->
        match acc with Some (_, _, c') when c' <= c -> acc | _ -> Some o)
      None options
  with
  | None -> None
  | Some (e0, s0, total) ->
    if total = infinity then None
    else begin
      (* walk greedily, always following an edge that achieves the memoised
         suffix cost *)
      let rec walk state vertex remaining acc_cost acc_edges =
        let here = suffix state vertex remaining in
        if
          here = 0.0
          && Subset.accepting t.machine state
          && (match target with None -> true | Some v -> vertex = Vertex.to_int v)
        then Some (Path.of_edges (List.rev acc_edges), acc_cost)
        else if remaining = 0 then None
        else begin
          let options =
            List.filter_map
              (fun cand -> step_cost state vertex (remaining - 1) cand)
              (candidates t state vertex)
          in
          match
            List.fold_left
              (fun acc ((_, _, c) as o) ->
                match acc with Some (_, _, c') when c' <= c -> acc | _ -> Some o)
              None options
          with
          | None -> None
          | Some (e, state', _) ->
            walk state'
              (Vertex.to_int (Edge.head e))
              (remaining - 1)
              (acc_cost +. t.weight e)
              (e :: acc_edges)
        end
      in
      walk s0 (Vertex.to_int (Edge.head e0)) (t.max_length - 1) (t.weight e0)
        [ e0 ]
    end

let cheapest t ~source ~target =
  reconstruct t ~source:(Some source) ~target:(Some target)

let cheapest_any t = reconstruct t ~source:None ~target:None
