(** Weighted evaluation of regular path expressions over any semiring.

    For a semiring [(S, ⊕, ⊗)] and an edge weighting [w : E → S], the value
    of a path is [⊗] of its edge weights in order (with [w(ε) = 1]), and the
    value aggregated for an endpoint pair [(i, j)] is

    [V(i,j) = ⊕ { w(a) | a ∈ denote(r), γ⁻(a) = i, γ⁺(a) = j, ‖a‖ ≤ L }].

    The computation is trajectory-level dynamic programming over the
    deterministic {!Mrpa_automata.Subset} machine crossed with (source
    vertex, current vertex); determinism guarantees each path contributes
    exactly once, so the result is the true ⊕-aggregation over the denoted
    {e set} (not over automaton runs). Cost is configurations × degree per
    level — independent of how many paths are being aggregated, which is
    what makes e.g. cheapest-path queries feasible where enumeration is
    not. *)

open Mrpa_graph
open Mrpa_core

type 'v result = {
  pairs : ((Vertex.t * Vertex.t) * 'v) list;
      (** aggregated value per endpoint pair of non-empty denoted paths, in
          lexicographic pair order; pairs whose value is [zero] are
          omitted. *)
  epsilon : 'v option;
      (** [Some one] when [ε] is denoted ([ε] has no endpoints). *)
}

val run :
  (module Semiring.S with type t = 'v) ->
  ?weight:(Edge.t -> 'v) ->
  Digraph.t ->
  Expr.t ->
  max_length:int ->
  'v result
(** [run (module S) ~weight g r ~max_length]. [weight] defaults to
    [fun _ -> S.one] (so {!Semiring.Natural} counts paths and
    {!Semiring.Boolean} computes reachable endpoint pairs). *)

val total : (module Semiring.S with type t = 'v) -> 'v result -> 'v
(** [⊕] over all pairs and [ε] — the aggregate over the whole denoted
    set. *)

val pair_value :
  (module Semiring.S with type t = 'v) ->
  'v result ->
  Vertex.t ->
  Vertex.t ->
  'v
(** Value for one endpoint pair ([zero] when absent). *)

(** {1 Common instantiations} *)

val reachable_pairs :
  Digraph.t -> Expr.t -> max_length:int -> (Vertex.t * Vertex.t) list
(** Endpoint pairs of the denoted set — [E_αβ]-style derivation (§IV-C)
    without materialising paths. *)

val count_pairs :
  Digraph.t -> Expr.t -> max_length:int -> ((Vertex.t * Vertex.t) * int) list
(** Distinct-path counts per endpoint pair. *)

val cheapest_paths :
  weight:(Edge.t -> float) ->
  Digraph.t ->
  Expr.t ->
  max_length:int ->
  ((Vertex.t * Vertex.t) * float) list
(** Tropical instantiation: minimal total weight per endpoint pair among
    denoted paths within the length bound. *)
