open Mrpa_graph
open Mrpa_automata

type 'v result = {
  pairs : ((Vertex.t * Vertex.t) * 'v) list;
  epsilon : 'v option;
}

let run (type v) (module S : Semiring.S with type t = v)
    ?(weight = fun (_ : Edge.t) -> S.one) g expr ~max_length : v result =
  if max_length < 0 then invalid_arg "Eval.run: negative max_length";
  let m = Subset.make expr in
  let masks = List.filter (fun mask -> mask <> 0) (Subset.graph_masks m g) in
  let initial = Subset.initial m in
  let epsilon = if Subset.accepting m initial then Some S.one else None in
  (* configuration: (source vertex, state, current vertex) -> value *)
  let level : (int * int * int, v) Hashtbl.t = Hashtbl.create 64 in
  (* accumulated answers: (source, target) -> value *)
  let answers : (int * int, v) Hashtbl.t = Hashtbl.create 64 in
  let combine tbl key value =
    let current =
      match Hashtbl.find_opt tbl key with Some x -> x | None -> S.zero
    in
    Hashtbl.replace tbl key (S.add current value)
  in
  let all_edges = Digraph.edges g in
  (* seed: first edges *)
  List.iter
    (fun e ->
      let mask = Subset.mask_of_edge m e in
      if mask <> 0 then begin
        let state = Subset.step m initial ~mask ~adj:true in
        if not (Subset.is_dead m state) then begin
          let key =
            (Vertex.to_int (Edge.tail e), state, Vertex.to_int (Edge.head e))
          in
          let value = weight e in
          combine level key value;
          ()
        end
      end)
    all_edges;
  let flush_accepting () =
    Hashtbl.iter
      (fun (src, state, v) value ->
        if Subset.accepting m state then combine answers (src, v) value)
      level
  in
  if max_length >= 1 then flush_accepting ();
  for _len = 2 to max_length do
    let next : (int * int * int, v) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (src, state, vertex) value ->
        let consume e adj =
          let mask = Subset.mask_of_edge m e in
          if mask <> 0 then begin
            let state' = Subset.step m state ~mask ~adj in
            if not (Subset.is_dead m state') then
              combine next
                (src, state', Vertex.to_int (Edge.head e))
                (S.mul value (weight e))
          end
        in
        let v = Vertex.of_int vertex in
        List.iter (fun e -> consume e true) (Digraph.out_edges g v);
        if Subset.has_live_free_step m state ~masks then
          List.iter
            (fun e -> if not (Vertex.equal (Edge.tail e) v) then consume e false)
            all_edges)
      level;
    Hashtbl.reset level;
    Hashtbl.iter (fun key value -> Hashtbl.replace level key value) next;
    flush_accepting ()
  done;
  let pairs =
    Hashtbl.fold
      (fun (src, dst) value acc ->
        if S.equal value S.zero then acc
        else ((Vertex.of_int src, Vertex.of_int dst), value) :: acc)
      answers []
    |> List.sort (fun ((s1, d1), _) ((s2, d2), _) ->
           let c = Vertex.compare s1 s2 in
           if c <> 0 then c else Vertex.compare d1 d2)
  in
  { pairs; epsilon }

let total (type v) (module S : Semiring.S with type t = v) (r : v result) : v =
  let base = match r.epsilon with Some x -> x | None -> S.zero in
  List.fold_left (fun acc (_, value) -> S.add acc value) base r.pairs

let pair_value (type v) (module S : Semiring.S with type t = v) (r : v result)
    src dst : v =
  match
    List.find_opt
      (fun ((s, d), _) -> Vertex.equal s src && Vertex.equal d dst)
      r.pairs
  with
  | Some (_, value) -> value
  | None -> S.zero

let reachable_pairs g expr ~max_length =
  let r = run (module Semiring.Boolean) g expr ~max_length in
  List.map fst r.pairs

let count_pairs g expr ~max_length =
  (run (module Semiring.Natural) g expr ~max_length).pairs

let cheapest_paths ~weight g expr ~max_length =
  (run (module Semiring.Tropical) ~weight g expr ~max_length).pairs
