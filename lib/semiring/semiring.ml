module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Boolean = struct
  type t = bool

  let zero = false
  let one = true
  let add = ( || )
  let mul = ( && )
  let equal = Bool.equal
  let pp = Format.pp_print_bool
end

module Natural = struct
  type t = int

  let zero = 0
  let one = 1
  let add = ( + )
  let mul = ( * )
  let equal = Int.equal
  let pp = Format.pp_print_int
end

module Tropical = struct
  type t = float

  let zero = infinity
  let one = 0.0
  let add = Float.min
  let mul = ( +. )
  let equal = Float.equal
  let pp fmt v = Format.fprintf fmt "%g" v
end

module Viterbi = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = Float.max
  let mul = ( *. )
  let equal = Float.equal
  let pp fmt v = Format.fprintf fmt "%g" v
end

module Probability = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let mul = ( *. )
  let equal = Float.equal
  let pp fmt v = Format.fprintf fmt "%g" v
end

module Bottleneck = struct
  type t = float

  let zero = neg_infinity
  let one = infinity
  let add = Float.max
  let mul = Float.min
  let equal = Float.equal
  let pp fmt v = Format.fprintf fmt "%g" v
end
