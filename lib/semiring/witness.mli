(** Witness extraction: not just the optimal value, an optimal {e path}.

    {!Eval} aggregates values per endpoint pair but deliberately never
    materialises paths; when one concrete optimum is wanted (show the user
    the cheapest admissible route, not merely its cost), this module
    reconstructs it by the tropical analogue of count-then-sample: a
    backward DP over {!Mrpa_automata.Subset} configurations memoises the
    minimal suffix cost to acceptance, and a forward greedy walk follows
    any edge achieving it.

    The returned cost always equals
    [Eval.pair_value (module Semiring.Tropical) …] for the same endpoints
    (property-tested), and the returned path is denoted by the expression
    and has exactly that cost. *)

open Mrpa_graph
open Mrpa_core

type t
(** Prepared backward DP; reusable across {!cheapest} calls. *)

val prepare :
  weight:(Edge.t -> float) -> Digraph.t -> Expr.t -> max_length:int -> t
(** Edge weights must be non-negative reals (min-plus optimality of the
    greedy reconstruction relies on suffix costs being well defined; any
    finite weights work, negativity included, because the DP is over a
    bounded horizon — the requirement is only that weights are finite). *)

val cheapest : t -> source:Vertex.t -> target:Vertex.t -> (Path.t * float) option
(** A minimum-cost denoted path from [source] to [target] within the
    length bound, with its cost; [None] when no such path exists. The empty
    path is never returned (it has no endpoints). *)

val cheapest_any : t -> (Path.t * float) option
(** A minimum-cost non-empty denoted path regardless of endpoints. *)
