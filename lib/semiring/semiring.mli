(** Semirings for weighted path aggregation.

    The paper's algebra computes path {e sets}; many practical questions
    over the same traversals are aggregations: does a path exist
    ({!Boolean}), how many are there ({!Natural}), what is the cheapest
    ({!Tropical}), the most reliable ({!Viterbi}), the total random-walk
    mass ({!Probability}), the widest bottleneck ({!Bottleneck}). Each is a
    change of semiring in the same dynamic program ({!Eval}), which is the
    standard algebraic-path generalisation of the paper's machinery
    (footnote 6's "more machinery" realised as structure, not new code).

    Laws expected of every instance — [add] commutative/associative with
    identity [zero]; [mul] associative with identity [one], distributing
    over [add]; [zero] annihilating [mul] — are enforced for the bundled
    instances by the property-test suite. *)

module type S = sig
  type t

  val zero : t
  (** Identity of [add]; the value of "no path". *)

  val one : t
  (** Identity of [mul]; the weight of [ε]. *)

  val add : t -> t -> t
  (** Combine alternative paths. *)

  val mul : t -> t -> t
  (** Combine consecutive edges along one path (applied left to right). *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Boolean : S with type t = bool
(** Existence: [add = (||)], [mul = (&&)]. *)

module Natural : S with type t = int
(** Counting: [add = (+)], [mul = ( * )]. With all edge weights [1] this
    reproduces {!Mrpa_automata.Counting} (property-tested). *)

module Tropical : S with type t = float
(** Min-plus: cheapest path. [zero = infinity], [one = 0.]. *)

module Viterbi : S with type t = float
(** Max-times over [\[0,1\]]: most probable single path. [zero = 0.],
    [one = 1.]. *)

module Probability : S with type t = float
(** Plus-times over non-negative reals: total weight mass over all denoted
    paths (e.g. random-walk probability when edge weights are transition
    probabilities). *)

module Bottleneck : S with type t = float
(** Max-min: widest-bottleneck path. [zero = neg_infinity],
    [one = infinity]. *)
